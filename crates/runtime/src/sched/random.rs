//! The seeded random scheduler with crash injection.

use super::{Action, SchedContext, Scheduler};
use crate::crash::{CrashMode, CrashModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`RandomScheduler`].
#[derive(Clone, Copy, Debug)]
pub struct RandomSchedulerConfig {
    /// RNG seed — runs are fully reproducible from the seed.
    pub seed: u64,
    /// Probability that the next event is a crash (while budget remains).
    pub crash_prob: f64,
    /// The crash adversary: budget, independent vs simultaneous mode
    /// ([`Action::CrashAll`], the Section 2 model, vs [`Action::Crash`],
    /// the independent model of Section 3) and whether crashes may hit a
    /// process whose current run already decided — forcing *re-runs*,
    /// which exercises the part of the agreement property that spans
    /// "outputs of the same process when it performs multiple runs"
    /// (Section 1). Shared with [`explore`](crate::explore), so the
    /// randomized and exact layers agree on crash legality.
    pub crash: CrashModel,
}

impl Default for RandomSchedulerConfig {
    fn default() -> Self {
        RandomSchedulerConfig {
            seed: 0,
            crash_prob: 0.1,
            crash: CrashModel::independent(3).after_decide(true),
        }
    }
}

/// A seeded pseudo-random scheduler: at each point, with probability
/// [`crash_prob`](RandomSchedulerConfig::crash_prob) (budget and
/// [`CrashModel`] policy permitting) it injects a crash, otherwise it
/// steps a uniformly random undecided process. Ends the execution when
/// every process has decided and either the budget is exhausted or the
/// coin says stop.
///
/// [`Action::CrashAll`] wipes *every* process, so in simultaneous mode
/// with post-decide crashes disabled the scheduler only emits it while
/// no process's current run has decided. (It used to emit `CrashAll`
/// even when every process had decided, silently violating the
/// configured policy; [`CrashModel::may_crash_all`] now gates it.)
#[derive(Clone, Debug)]
pub struct RandomScheduler {
    config: RandomSchedulerConfig,
    rng: StdRng,
}

impl RandomScheduler {
    /// Creates a random scheduler from a configuration.
    pub fn new(config: RandomSchedulerConfig) -> Self {
        RandomScheduler {
            rng: StdRng::seed_from_u64(config.seed),
            config,
        }
    }

    /// Convenience constructor: seed only, defaults elsewhere.
    pub fn from_seed(seed: u64) -> Self {
        RandomScheduler::new(RandomSchedulerConfig {
            seed,
            ..RandomSchedulerConfig::default()
        })
    }
}

impl Scheduler for RandomScheduler {
    fn next_action(&mut self, ctx: &SchedContext<'_>) -> Option<Action> {
        let model = &self.config.crash;
        let undecided = ctx.undecided();

        let want_crash =
            !model.exhausted(ctx.crashes_injected) && self.rng.gen_bool(self.config.crash_prob);
        if want_crash {
            match model.mode {
                CrashMode::Simultaneous => {
                    if model.may_crash_all(ctx.decided) {
                        return Some(Action::CrashAll);
                    }
                    // Policy forbids wiping a decided run: fall through
                    // to a step instead.
                }
                CrashMode::Independent => {
                    let crashable = model.crash_candidates(ctx.decided);
                    if !crashable.is_empty() {
                        let victim = crashable[self.rng.gen_range(0..crashable.len())];
                        return Some(Action::Crash(victim));
                    }
                }
            }
        }

        if undecided.is_empty() {
            return None;
        }
        Some(Action::Step(
            undecided[self.rng.gen_range(0..undecided.len())],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(decided: &'a [bool], crashes: usize) -> SchedContext<'a> {
        SchedContext {
            n: decided.len(),
            decided,
            steps_taken: 0,
            crashes_injected: crashes,
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let decided = vec![false; 4];
        let mut a = RandomScheduler::from_seed(7);
        let mut b = RandomScheduler::from_seed(7);
        for _ in 0..50 {
            assert_eq!(
                a.next_action(&ctx(&decided, 0)),
                b.next_action(&ctx(&decided, 0))
            );
        }
    }

    #[test]
    fn respects_crash_budget() {
        let mut s = RandomScheduler::new(RandomSchedulerConfig {
            seed: 3,
            crash_prob: 1.0,
            crash: CrashModel::independent(2).after_decide(true),
        });
        let decided = vec![false; 2];
        // With crash_prob = 1, the first two actions are crashes, after
        // which the budget is spent and only steps are produced.
        assert!(matches!(
            s.next_action(&ctx(&decided, 0)),
            Some(Action::Crash(_))
        ));
        assert!(matches!(
            s.next_action(&ctx(&decided, 1)),
            Some(Action::Crash(_))
        ));
        assert!(matches!(
            s.next_action(&ctx(&decided, 2)),
            Some(Action::Step(_))
        ));
    }

    #[test]
    fn simultaneous_mode_emits_crash_all() {
        let mut s = RandomScheduler::new(RandomSchedulerConfig {
            seed: 3,
            crash_prob: 1.0,
            crash: CrashModel::simultaneous(1),
        });
        let decided = vec![false; 3];
        assert_eq!(s.next_action(&ctx(&decided, 0)), Some(Action::CrashAll));
    }

    /// Regression: with post-decide crashes disabled, `CrashAll` must
    /// not be emitted once a run has decided — it would wipe the decided
    /// run, which is exactly what the policy forbids. Previously the
    /// scheduler emitted it unconditionally, even with *every* process
    /// decided.
    #[test]
    fn crash_all_suppressed_after_decisions_when_policy_forbids() {
        let mut s = RandomScheduler::new(RandomSchedulerConfig {
            seed: 3,
            crash_prob: 1.0,
            crash: CrashModel::simultaneous(5),
        });
        // Every process decided: the execution must end, not crash-loop.
        assert_eq!(s.next_action(&ctx(&[true, true], 0)), None);
        // One process decided: the other is stepped instead.
        assert_eq!(
            s.next_action(&ctx(&[true, false], 0)),
            Some(Action::Step(1))
        );
        // With the policy relaxed, CrashAll is back on the table.
        let mut s = RandomScheduler::new(RandomSchedulerConfig {
            seed: 3,
            crash_prob: 1.0,
            crash: CrashModel::simultaneous(5).after_decide(true),
        });
        assert_eq!(
            s.next_action(&ctx(&[true, true], 0)),
            Some(Action::CrashAll)
        );
    }

    #[test]
    fn terminates_when_all_decided_and_no_crash_budget() {
        let mut s = RandomScheduler::new(RandomSchedulerConfig {
            seed: 1,
            crash_prob: 0.0,
            crash: CrashModel::none().after_decide(true),
        });
        let decided = vec![true, true];
        assert_eq!(s.next_action(&ctx(&decided, 0)), None);
    }
}
