//! The `E_A` adversary of Theorem 14's valency argument.

use super::{Action, SchedContext, Scheduler};
use crate::crash::CrashModel;
use crate::program::Pid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A scheduler producing executions in the paper's class `E_A`
/// (Section 3.2): only the designated process (`p_1` in the paper) ever
/// crashes, and *"in any prefix of the execution, the number of crashes of
/// `p_1` is less than or equal to the total number of steps of
/// `p_2, …, p_n`"*.
///
/// This is the execution class over which the Theorem 14 / Appendix H
/// valency arguments define valence: it is permissive enough to contain
/// the crash moves of Fig. 3/Fig. 8 (`p_1` can crash whenever someone else
/// has taken a step) yet restrictive enough that a failure-free extension
/// must decide — which is what makes valence well-defined.
///
/// The scheduler behaves like [`RandomScheduler`](super::RandomScheduler)
/// otherwise: seeded, with a crash probability applied only when the
/// `E_A` budget (steps of others minus crashes so far) is positive.
///
/// The crash policy is expressed as a [`CrashModel`] (independent mode,
/// post-decide crashes allowed — `E_A` explicitly forces re-runs) whose
/// budget is *dynamic*: it grows by one with every step of a
/// non-designated process, exactly the paper's prefix constraint.
#[derive(Clone, Debug)]
pub struct BudgetedCrashScheduler {
    crasher: Pid,
    crash_prob: f64,
    rng: StdRng,
    model: CrashModel,
    crashes_of_crasher: usize,
}

impl BudgetedCrashScheduler {
    /// Creates an `E_A` scheduler in which only `crasher` may crash, with
    /// the given per-decision crash probability.
    ///
    /// # Panics
    ///
    /// Panics if `crash_prob` is not in `[0, 1]`.
    pub fn new(crasher: Pid, crash_prob: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&crash_prob),
            "crash_prob must be a probability"
        );
        BudgetedCrashScheduler {
            crasher,
            crash_prob,
            rng: StdRng::seed_from_u64(seed),
            model: CrashModel::independent(0).after_decide(true),
            crashes_of_crasher: 0,
        }
    }

    /// The remaining `E_A` crash budget: steps taken by the non-crashing
    /// processes minus crashes already injected.
    pub fn crash_budget(&self) -> usize {
        self.model.remaining(self.crashes_of_crasher)
    }
}

impl Scheduler for BudgetedCrashScheduler {
    fn next_action(&mut self, ctx: &SchedContext<'_>) -> Option<Action> {
        // E_A: p_1 may crash while the prefix constraint allows it —
        // including after it decided (forcing re-runs), which the
        // model's post-decide policy records explicitly.
        if !self.model.exhausted(self.crashes_of_crasher) && self.rng.gen_bool(self.crash_prob) {
            self.crashes_of_crasher += 1;
            return Some(Action::Crash(self.crasher));
        }
        let undecided = ctx.undecided();
        if undecided.is_empty() {
            return None;
        }
        let p = undecided[self.rng.gen_range(0..undecided.len())];
        if p != self.crasher {
            // One more step of the others: the E_A prefix constraint
            // grants the adversary one more potential crash.
            self.model.budget += 1;
        }
        Some(Action::Step(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(decided: &'a [bool]) -> SchedContext<'a> {
        SchedContext {
            n: decided.len(),
            decided,
            steps_taken: 0,
            crashes_injected: 0,
        }
    }

    #[test]
    fn never_crashes_before_others_step() {
        // With probability 1 of crashing, the first action still cannot be
        // a crash: the E_A budget starts at zero.
        let mut s = BudgetedCrashScheduler::new(0, 1.0, 42);
        let decided = vec![false, false];
        let first = s.next_action(&ctx(&decided)).expect("an action");
        assert!(matches!(first, Action::Step(_)), "got {first:?}");
    }

    #[test]
    fn prefix_invariant_holds_along_any_run() {
        let mut s = BudgetedCrashScheduler::new(0, 0.5, 7);
        let decided = vec![false, false, false];
        let mut others_steps = 0usize;
        let mut crashes = 0usize;
        for _ in 0..500 {
            match s.next_action(&ctx(&decided)).expect("running") {
                Action::Step(p) => {
                    if p != 0 {
                        others_steps += 1;
                    }
                }
                Action::Crash(p) => {
                    assert_eq!(p, 0, "only the designated process crashes");
                    crashes += 1;
                }
                Action::CrashAll => panic!("E_A has no simultaneous crashes"),
                Action::Branch(..) => panic!("schedulers never emit Branch"),
            }
            assert!(
                crashes <= others_steps,
                "E_A prefix constraint violated: {crashes} > {others_steps}"
            );
        }
        assert_eq!(s.crash_budget(), others_steps - crashes);
    }

    #[test]
    fn stops_when_all_decided_and_coin_says_step() {
        let mut s = BudgetedCrashScheduler::new(0, 0.0, 1);
        let decided = vec![true, true];
        assert_eq!(s.next_action(&ctx(&decided)), None);
    }
}
