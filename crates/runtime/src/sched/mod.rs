//! Schedulers: the adversary that orders steps and injects crashes.
//!
//! The paper's adversary controls (a) the interleaving of process steps and
//! (b) when processes crash — individually in the *independent* model,
//! collectively in the *simultaneous* model. A [`Scheduler`] makes exactly
//! those choices, one [`Action`] at a time:
//!
//! * [`RandomScheduler`] — seeded pseudo-random interleavings with
//!   configurable crash probability, crash budget, and crash model; the
//!   workhorse of the randomized experiments.
//! * [`RoundRobin`] — the simplest fair schedule (crash-free).
//! * [`ScriptedScheduler`] — an exact, hand-written event list; used to
//!   reproduce the paper's adversarial scenarios (Section 3.1's bad
//!   scenarios, Fig. 8's stack executions) step by step.
//!
//! The bounded-*exhaustive* adversary lives in
//! [`explore`](crate::explore), not here: it enumerates every schedule
//! rather than choosing one.

mod budgeted;
mod random;
mod round_robin;
mod script;

pub use budgeted::BudgetedCrashScheduler;
pub use random::{RandomScheduler, RandomSchedulerConfig};
pub use round_robin::RoundRobin;
pub use script::ScriptedScheduler;

use crate::program::Pid;

/// One scheduling decision.
///
/// The `Ord` instance (`Step < Branch < Crash < CrashAll`, then by
/// pid/choice) gives schedules a canonical lexicographic order; the
/// parallel model-checker uses it to pick a deterministic violation
/// witness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Action {
    /// Let process `pid` execute one step.
    Step(Pid),
    /// Let process `pid` execute the internal alternative with the given
    /// choice id ([`Program::step_choice`](crate::Program::step_choice)).
    /// Emitted only by the exhaustive engines, and only for states
    /// offering more than one choice; schedulers resolve internal
    /// nondeterminism deterministically via [`Action::Step`].
    Branch(Pid, usize),
    /// Crash process `pid` (independent-crash model).
    Crash(Pid),
    /// Crash every process simultaneously (simultaneous-crash model).
    CrashAll,
}

/// What a scheduler can see when making its next decision.
#[derive(Clone, Debug)]
pub struct SchedContext<'a> {
    /// Number of processes.
    pub n: usize,
    /// `decided[p]` — whether process `p`'s *current run* has produced an
    /// output (a later crash clears the flag and forces a re-run).
    pub decided: &'a [bool],
    /// Steps scheduled so far.
    pub steps_taken: usize,
    /// Crash events injected so far.
    pub crashes_injected: usize,
}

impl SchedContext<'_> {
    /// Indices of processes whose current run has not decided.
    pub fn undecided(&self) -> Vec<Pid> {
        (0..self.n).filter(|&p| !self.decided[p]).collect()
    }

    /// Whether every process's current run has decided.
    pub fn all_decided(&self) -> bool {
        self.decided.iter().all(|d| *d)
    }
}

/// A source of scheduling decisions.
pub trait Scheduler {
    /// The next action, or `None` to end the execution.
    fn next_action(&mut self, ctx: &SchedContext<'_>) -> Option<Action>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_helpers() {
        let decided = vec![true, false, true];
        let ctx = SchedContext {
            n: 3,
            decided: &decided,
            steps_taken: 5,
            crashes_injected: 1,
        };
        assert_eq!(ctx.undecided(), vec![1]);
        assert!(!ctx.all_decided());
    }
}
