//! Schedulers: the adversary that orders steps and injects crashes.
//!
//! The paper's adversary controls (a) the interleaving of process steps and
//! (b) when processes crash — individually in the *independent* model,
//! collectively in the *simultaneous* model. A [`Scheduler`] makes exactly
//! those choices, one [`Action`] at a time:
//!
//! * [`RandomScheduler`] — seeded pseudo-random interleavings with
//!   configurable crash probability, crash budget, and crash model; the
//!   workhorse of the randomized experiments.
//! * [`RoundRobin`] — the simplest fair schedule (crash-free).
//! * [`ScriptedScheduler`] — an exact, hand-written event list; used to
//!   reproduce the paper's adversarial scenarios (Section 3.1's bad
//!   scenarios, Fig. 8's stack executions) step by step.
//!
//! The bounded-*exhaustive* adversary lives in
//! [`explore`](crate::explore), not here: it enumerates every schedule
//! rather than choosing one.
//!
//! ## The scheduler contract
//!
//! Three rules every implementation in this module obeys; downstream
//! layers — most heavily the swarm service ([`swarm`](crate::swarm)) —
//! are built on them:
//!
//! 1. **Seed determinism.** A scheduler's decisions are a pure function
//!    of its construction parameters and the sequence of
//!    [`SchedContext`]s it has been shown. There is no hidden entropy:
//!    [`RandomScheduler`] draws from a PRNG seeded *only* by
//!    [`RandomSchedulerConfig::seed`], so equal seeds replay
//!    byte-identical executions — which is what lets the swarm engine
//!    report a bare seed number as a complete, replayable
//!    counterexample, on any machine and at any thread count.
//! 2. **Crash-budget interaction.** Schedulers never invent crash
//!    legality rules: every crash decision is routed through the shared
//!    [`CrashModel`](crate::CrashModel) — budget via
//!    `exhausted(ctx.crashes_injected)` (the context's counter, not a
//!    private one, so external crash injections count against the same
//!    budget), victim eligibility via `may_crash`/`crash_candidates`,
//!    and simultaneous wipes via `may_crash_all`. A schedule emitted by
//!    any scheduler here is therefore `CrashModel`-legal by
//!    construction, and the swarm shrinker can re-check that same
//!    legality on every delta-debugging candidate without consulting
//!    the scheduler that produced the original.
//! 3. **Termination signalling.** Returning `None` ends the execution;
//!    [`RandomScheduler`] does so only when every process's current
//!    run has decided ([`SchedContext::all_decided`]) and its coin
//!    declines a further (policy-legal) post-decide crash — so a
//!    seeded run is finite whenever the algorithm under test is
//!    recoverable wait-free and the crash budget is finite.
//!    ([`run`](crate::run)'s `max_actions` bound backstops algorithms
//!    that are not.)
//!
//! Schedulers emit only [`Action::Step`], [`Action::Crash`] and
//! [`Action::CrashAll`] — never [`Action::Branch`], which is the
//! exhaustive engines' private vocabulary for internal nondeterminism
//! (schedulers resolve it deterministically through
//! [`Program::step`](crate::Program::step)). The swarm shrinker leans
//! on this too: a `Branch` in a shrink candidate marks the candidate
//! ill-formed rather than adversarial.

mod budgeted;
mod random;
mod round_robin;
mod script;

pub use budgeted::BudgetedCrashScheduler;
pub use random::{RandomScheduler, RandomSchedulerConfig};
pub use round_robin::RoundRobin;
pub use script::ScriptedScheduler;

use crate::program::Pid;

/// One scheduling decision.
///
/// The `Ord` instance (`Step < Branch < Crash < CrashAll`, then by
/// pid/choice) gives schedules a canonical lexicographic order; the
/// parallel model-checker uses it to pick a deterministic violation
/// witness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Action {
    /// Let process `pid` execute one step.
    Step(Pid),
    /// Let process `pid` execute the internal alternative with the given
    /// choice id ([`Program::step_choice`](crate::Program::step_choice)).
    /// Emitted only by the exhaustive engines, and only for states
    /// offering more than one choice; schedulers resolve internal
    /// nondeterminism deterministically via [`Action::Step`].
    Branch(Pid, usize),
    /// Crash process `pid` (independent-crash model).
    Crash(Pid),
    /// Crash every process simultaneously (simultaneous-crash model).
    CrashAll,
}

/// What a scheduler can see when making its next decision.
#[derive(Clone, Debug)]
pub struct SchedContext<'a> {
    /// Number of processes.
    pub n: usize,
    /// `decided[p]` — whether process `p`'s *current run* has produced an
    /// output (a later crash clears the flag and forces a re-run).
    pub decided: &'a [bool],
    /// Steps scheduled so far.
    pub steps_taken: usize,
    /// Crash events injected so far.
    pub crashes_injected: usize,
}

impl SchedContext<'_> {
    /// Indices of processes whose current run has not decided.
    pub fn undecided(&self) -> Vec<Pid> {
        (0..self.n).filter(|&p| !self.decided[p]).collect()
    }

    /// Whether every process's current run has decided.
    pub fn all_decided(&self) -> bool {
        self.decided.iter().all(|d| *d)
    }
}

/// A source of scheduling decisions.
pub trait Scheduler {
    /// The next action, or `None` to end the execution.
    fn next_action(&mut self, ctx: &SchedContext<'_>) -> Option<Action>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_helpers() {
        let decided = vec![true, false, true];
        let ctx = SchedContext {
            n: 3,
            decided: &decided,
            steps_taken: 5,
            crashes_injected: 1,
        };
        assert_eq!(ctx.undecided(), vec![1]);
        assert!(!ctx.all_decided());
    }
}
