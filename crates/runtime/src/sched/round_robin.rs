//! The round-robin scheduler.

use super::{Action, SchedContext, Scheduler};

/// A crash-free scheduler that cycles through the undecided processes in
/// index order. Useful as a deterministic baseline and for crash-free
/// consensus runs (the halting-failure setting of Theorem 3).
#[derive(Clone, Debug, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl RoundRobin {
    /// Creates a round-robin scheduler starting at process 0.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl Scheduler for RoundRobin {
    fn next_action(&mut self, ctx: &SchedContext<'_>) -> Option<Action> {
        if ctx.all_decided() {
            return None;
        }
        for offset in 0..ctx.n {
            let p = (self.cursor + offset) % ctx.n;
            if !ctx.decided[p] {
                self.cursor = (p + 1) % ctx.n;
                return Some(Action::Step(p));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_skipping_decided() {
        let mut rr = RoundRobin::new();
        let decided = vec![false, true, false];
        let ctx = SchedContext {
            n: 3,
            decided: &decided,
            steps_taken: 0,
            crashes_injected: 0,
        };
        assert_eq!(rr.next_action(&ctx), Some(Action::Step(0)));
        assert_eq!(rr.next_action(&ctx), Some(Action::Step(2)));
        assert_eq!(rr.next_action(&ctx), Some(Action::Step(0)));
    }

    #[test]
    fn stops_when_all_decided() {
        let mut rr = RoundRobin::new();
        let decided = vec![true, true];
        let ctx = SchedContext {
            n: 2,
            decided: &decided,
            steps_taken: 4,
            crashes_injected: 0,
        };
        assert_eq!(rr.next_action(&ctx), None);
    }
}
