//! The scripted scheduler: exact, hand-written adversarial schedules.

use super::{Action, SchedContext, Scheduler};
use std::collections::VecDeque;

/// Replays a fixed list of [`Action`]s, then (optionally) finishes the
/// execution round-robin.
///
/// This is how the paper's hand-crafted adversarial scenarios are
/// reproduced exactly — e.g. Section 3.1's "process p₁ on team B begins,
/// sees R_A = ⊥, and is poised to update O…" interleavings, or the Fig. 8
/// stack executions. The script encodes the bad prefix; the round-robin
/// tail lets every process finish so agreement can be checked.
#[derive(Clone, Debug)]
pub struct ScriptedScheduler {
    script: VecDeque<Action>,
    finish_round_robin: bool,
    cursor: usize,
}

impl ScriptedScheduler {
    /// A scheduler that replays `script` and then stops.
    pub fn new(script: impl IntoIterator<Item = Action>) -> Self {
        ScriptedScheduler {
            script: script.into_iter().collect(),
            finish_round_robin: false,
            cursor: 0,
        }
    }

    /// A scheduler that replays `script` and then runs every undecided
    /// process round-robin until all have decided.
    pub fn then_finish(script: impl IntoIterator<Item = Action>) -> Self {
        ScriptedScheduler {
            script: script.into_iter().collect(),
            finish_round_robin: true,
            cursor: 0,
        }
    }

    /// Actions remaining in the scripted prefix.
    pub fn remaining(&self) -> usize {
        self.script.len()
    }
}

impl Scheduler for ScriptedScheduler {
    fn next_action(&mut self, ctx: &SchedContext<'_>) -> Option<Action> {
        if let Some(action) = self.script.pop_front() {
            return Some(action);
        }
        if !self.finish_round_robin || ctx.all_decided() {
            return None;
        }
        for offset in 0..ctx.n {
            let p = (self.cursor + offset) % ctx.n;
            if !ctx.decided[p] {
                self.cursor = (p + 1) % ctx.n;
                return Some(Action::Step(p));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replays_script_then_stops() {
        let mut s = ScriptedScheduler::new([Action::Step(1), Action::Crash(0)]);
        let decided = vec![false, false];
        let ctx = SchedContext {
            n: 2,
            decided: &decided,
            steps_taken: 0,
            crashes_injected: 0,
        };
        assert_eq!(s.remaining(), 2);
        assert_eq!(s.next_action(&ctx), Some(Action::Step(1)));
        assert_eq!(s.next_action(&ctx), Some(Action::Crash(0)));
        assert_eq!(s.next_action(&ctx), None);
    }

    #[test]
    fn finishes_round_robin_when_requested() {
        let mut s = ScriptedScheduler::then_finish([Action::Step(1)]);
        let decided = vec![false, false];
        let ctx = SchedContext {
            n: 2,
            decided: &decided,
            steps_taken: 0,
            crashes_injected: 0,
        };
        assert_eq!(s.next_action(&ctx), Some(Action::Step(1)));
        assert_eq!(s.next_action(&ctx), Some(Action::Step(0)));
        assert_eq!(s.next_action(&ctx), Some(Action::Step(1)));
    }
}
