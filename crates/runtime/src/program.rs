//! The [`Program`] trait: algorithms as crashable state machines.

use crate::memory::MemOps;
use rc_spec::Value;
use std::fmt;

/// A process identifier, `0..n`.
pub type Pid = usize;

/// The outcome of one program step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Step {
    /// The program performed (at most) one shared-memory access and has
    /// more work to do.
    Running,
    /// The program's current run returned this output value.
    Decided(Value),
}

/// An algorithm for one process, written as an explicit state machine.
///
/// ## Contract
///
/// * Each call to [`step`](Program::step) performs **at most one**
///   shared-memory access (one `MemOps` method call). This granularity is
///   what makes the simulated executions *exactly* the executions of the
///   paper's model — the scheduler can interleave processes and inject
///   crashes between any two shared-memory accesses.
/// * [`on_crash`](Program::on_crash) models a process crash: it must reset
///   the program counter and all local variables to their initial values.
///   The paper's model reinitializes everything local; only the *input* is
///   assumed stable across runs ("we assume a process's input value does
///   not change, even across multiple runs" — Section 1), so
///   implementations keep their input and wipe the rest.
///   (The `rc-core::algorithms::input_mask` transformation removes even
///   the stable-input assumption, exactly as described in the paper.)
/// * [`state_key`](Program::state_key) returns a *complete* structural
///   encoding of the volatile state (program counter + locals). The model
///   checker memoizes on it, so two programs with equal keys must behave
///   identically forever; encoding less than the full state would make the
///   exhaustive exploration unsound.
///
/// Programs are passive data (`Send + Sync`): nothing runs without a
/// scheduler calling [`step`](Program::step), and the model checker's
/// copy-on-write branching shares unstepped programs between sibling
/// states across worker threads.
pub trait Program: fmt::Debug + Send + Sync {
    /// Executes one step (at most one shared-memory access).
    fn step(&mut self, mem: &mut dyn MemOps) -> Step;

    /// Crashes the process: volatile state (program counter and locals) is
    /// reset; the input, if any, is retained.
    fn on_crash(&mut self);

    /// Complete structural encoding of the volatile state, for exact
    /// model-checker memoization.
    fn state_key(&self) -> Value;

    /// Clones the program as a boxed trait object (used by the model
    /// checker to branch the search).
    fn boxed_clone(&self) -> Box<dyn Program>;
}

impl Clone for Box<dyn Program> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{Addr, Memory};

    /// A two-step program: write input, then decide it.
    #[derive(Clone, Debug)]
    struct TwoStep {
        addr: Addr,
        input: Value,
        pc: u8,
    }

    impl Program for TwoStep {
        fn step(&mut self, mem: &mut dyn MemOps) -> Step {
            match self.pc {
                0 => {
                    mem.write_register(self.addr, self.input.clone());
                    self.pc = 1;
                    Step::Running
                }
                _ => Step::Decided(mem.read_register(self.addr)),
            }
        }
        fn on_crash(&mut self) {
            self.pc = 0;
        }
        fn state_key(&self) -> Value {
            Value::Int(i64::from(self.pc))
        }
        fn boxed_clone(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn crash_resets_pc_but_keeps_input() {
        let mut mem = Memory::new();
        let addr = mem.alloc_register(Value::Bottom);
        let mut p = TwoStep {
            addr,
            input: Value::Int(9),
            pc: 0,
        };
        assert_eq!(p.step(&mut mem), Step::Running);
        p.on_crash();
        assert_eq!(p.state_key(), Value::Int(0));
        // Shared memory survives the crash (non-volatile).
        assert_eq!(mem.peek(addr), Value::Int(9));
        // Re-run from the beginning.
        assert_eq!(p.step(&mut mem), Step::Running);
        assert_eq!(p.step(&mut mem), Step::Decided(Value::Int(9)));
    }

    #[test]
    fn boxed_clone_is_independent() {
        let mut mem = Memory::new();
        let addr = mem.alloc_register(Value::Bottom);
        let p: Box<dyn Program> = Box::new(TwoStep {
            addr,
            input: Value::Int(1),
            pc: 0,
        });
        let mut q = p.clone();
        q.step(&mut mem);
        assert_eq!(p.state_key(), Value::Int(0));
        assert_eq!(q.state_key(), Value::Int(1));
    }
}
