//! The [`Program`] trait: algorithms as crashable state machines.

use crate::memory::{Addr, MemOps};
use rc_spec::Value;
use std::fmt;

/// A process identifier, `0..n`.
pub type Pid = usize;

/// A shared-cell address remapping, handed to [`Program::rebind`] by the
/// model checker's full-state symmetry reduction.
///
/// When an orbit permutation moves a process's payload to another slot,
/// the cells that process *owns* (see
/// [`SymmetrySpec::with_owned_cells`](crate::SymmetrySpec::with_owned_cells))
/// move with it — and the relocated program must be told its cells' new
/// addresses. The map is total over the system's cells and is the
/// identity everywhere except the owned cells of the moved processes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rebinding {
    /// `map[a]` is the new address of old address `a`.
    map: Vec<Addr>,
}

impl Rebinding {
    /// The identity map over a memory of `cells` addresses.
    pub fn identity(cells: usize) -> Self {
        Rebinding {
            map: (0..cells).map(Addr).collect(),
        }
    }

    /// Redirects `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is outside the memory the map was built for.
    pub fn map(&mut self, from: Addr, to: Addr) {
        self.map[from.0] = to;
    }

    /// The new address of `addr`. Programs implement
    /// [`Program::rebind`] by replacing every held address `a` with
    /// `lookup(a)`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the memory the map was built for.
    pub fn lookup(&self, addr: Addr) -> Addr {
        self.map[addr.0]
    }

    /// The inverse map.
    ///
    /// # Panics
    ///
    /// Panics if the map is not a bijection.
    pub fn inverse(&self) -> Self {
        let mut inv = vec![None; self.map.len()];
        for (from, to) in self.map.iter().enumerate() {
            assert!(
                inv[to.0].is_none(),
                "rebinding is not a bijection: two addresses map to {to}"
            );
            inv[to.0] = Some(Addr(from));
        }
        Rebinding {
            map: inv
                .into_iter()
                .map(|a| a.expect("bijection covers every address"))
                .collect(),
        }
    }
}

/// The outcome of one program step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Step {
    /// The program performed (at most) one shared-memory access and has
    /// more work to do.
    Running,
    /// The program's current run returned this output value.
    Decided(Value),
}

/// An algorithm for one process, written as an explicit state machine.
///
/// ## Contract
///
/// * Each call to [`step`](Program::step) performs **at most one**
///   shared-memory access (one `MemOps` method call). This granularity is
///   what makes the simulated executions *exactly* the executions of the
///   paper's model — the scheduler can interleave processes and inject
///   crashes between any two shared-memory accesses.
/// * [`on_crash`](Program::on_crash) models a process crash: it must reset
///   the program counter and all local variables to their initial values.
///   The paper's model reinitializes everything local; only the *input* is
///   assumed stable across runs ("we assume a process's input value does
///   not change, even across multiple runs" — Section 1), so
///   implementations keep their input and wipe the rest.
///   (The `rc-core::algorithms::input_mask` transformation removes even
///   the stable-input assumption, exactly as described in the paper.)
/// * [`state_key`](Program::state_key) returns a *complete* structural
///   encoding of the volatile state (program counter + locals). The model
///   checker memoizes on it, so two programs with equal keys must behave
///   identically forever; encoding less than the full state would make the
///   exhaustive exploration unsound.
///
/// Programs are passive data (`Send + Sync`): nothing runs without a
/// scheduler calling [`step`](Program::step), and the model checker's
/// copy-on-write branching shares unstepped programs between sibling
/// states across worker threads.
pub trait Program: fmt::Debug + Send + Sync {
    /// Executes one step (at most one shared-memory access).
    ///
    /// For internally nondeterministic programs this must execute the
    /// *first* alternative of [`choices`](Program::choices) — schedulers
    /// and the threaded executor drive programs through `step` alone, so
    /// `step` is the deterministic resolution the paper's pseudocode
    /// prescribes, while the exhaustive engines additionally branch over
    /// [`step_choice`](Program::step_choice).
    fn step(&mut self, mem: &mut dyn MemOps) -> Step;

    /// The enabled internal alternatives of the next step, as stable
    /// choice ids. The default — a single id `0` — declares the step
    /// deterministic. A program whose next step is internally
    /// nondeterministic (e.g. a scalarset scan free to read any
    /// unchecked family register) returns one id per alternative; the
    /// exhaustive engines then branch over every id via
    /// [`step_choice`](Program::step_choice), while a single-entry list
    /// is executed through [`step`](Program::step).
    ///
    /// Contract: ids must be a deterministic function of the volatile
    /// state, the list must be non-empty, and when more than one id is
    /// offered the ids must be **process-slot-indexed** (e.g. scalarset
    /// family positions) — the witness reconstruction renames them
    /// through orbit permutations together with the pids.
    fn choices(&self) -> Vec<usize> {
        vec![0]
    }

    /// Executes the alternative with the given choice id (at most one
    /// shared-memory access). `step_choice(first)` — for the first entry
    /// of [`choices`](Program::choices) — must behave exactly like
    /// [`step`](Program::step). The default delegates to `step`, which
    /// is correct for every deterministic program.
    fn step_choice(&mut self, mem: &mut dyn MemOps, choice: usize) -> Step {
        debug_assert_eq!(
            choice, 0,
            "default step_choice only serves the default choice id"
        );
        self.step(mem)
    }

    /// Whether the volatile state currently references scalarset family
    /// members *positionally* — e.g. a mid-scan set of already-checked
    /// family positions. While any program of a system is pinned, the
    /// symmetry reduction must not permute the family (the held
    /// positions would dangle), so canonicalization is skipped for such
    /// states; states whose position references are permutation-fixed
    /// (empty or complete scans) report `false` and canonicalize as
    /// usual. The scalarset certifier checks this flag is honest: a
    /// state that pairs with a *different* state under a family
    /// transposition must report pinned. The default — never pinned —
    /// is correct for every program that holds no family positions.
    fn scalarset_pinned(&self) -> bool {
        false
    }

    /// Crashes the process: volatile state (program counter and locals) is
    /// reset; the input, if any, is retained.
    fn on_crash(&mut self);

    /// Complete structural encoding of the volatile state, for exact
    /// model-checker memoization.
    fn state_key(&self) -> Value;

    /// Clones the program as a boxed trait object (used by the model
    /// checker to branch the search).
    fn boxed_clone(&self) -> Box<dyn Program>;

    /// Remaps every shared-cell address the program holds: each held
    /// [`Addr`] — including addresses inside nested programs and
    /// captured layouts — must be replaced by [`Rebinding::lookup`] of
    /// it. The model checker's full-state symmetry reduction calls this
    /// when an orbit permutation relocates the program together with its
    /// owned cells; rebinding must not change
    /// [`state_key`](Program::state_key) (addresses are identity, not
    /// volatile state — two rebound copies of one program differ only in
    /// *where* they point).
    ///
    /// The default implementation panics: it is only ever invoked for
    /// programs of orbits that declare owned cells, and such orbits must
    /// be built from rebindable programs.
    fn rebind(&mut self, map: &Rebinding) {
        let _ = map;
        panic!(
            "this Program does not support address rebinding; implement \
             Program::rebind, or declare no owned cells for its process \
             (SymmetrySpec::with_owned_cells) — the footprint analyzer \
             (rc_runtime::lint_system / `tables lint`) derives sound \
             owned-cell candidates and checks the declarations"
        );
    }

    /// Every shared-cell address the program may access over *any*
    /// execution (its own and all programs it may create), used by the
    /// owned-cell soundness validation: a cell owned by a process in an
    /// acting orbit may be referenced by **no other process** — see the
    /// [`canon`](crate::canon) module docs. `None` (the default) means
    /// the reference set is not enumerable; systems declaring owned
    /// cells are then rejected at search start, because the validation
    /// cannot establish soundness.
    fn referenced_cells(&self) -> Option<Vec<Addr>> {
        None
    }
}

impl Clone for Box<dyn Program> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{Addr, Memory};

    /// A two-step program: write input, then decide it.
    #[derive(Clone, Debug)]
    struct TwoStep {
        addr: Addr,
        input: Value,
        pc: u8,
    }

    impl Program for TwoStep {
        fn step(&mut self, mem: &mut dyn MemOps) -> Step {
            match self.pc {
                0 => {
                    mem.write_register(self.addr, self.input.clone());
                    self.pc = 1;
                    Step::Running
                }
                _ => Step::Decided(mem.read_register(self.addr)),
            }
        }
        fn on_crash(&mut self) {
            self.pc = 0;
        }
        fn state_key(&self) -> Value {
            Value::Int(i64::from(self.pc))
        }
        fn boxed_clone(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn crash_resets_pc_but_keeps_input() {
        let mut mem = Memory::new();
        let addr = mem.alloc_register(Value::Bottom);
        let mut p = TwoStep {
            addr,
            input: Value::Int(9),
            pc: 0,
        };
        assert_eq!(p.step(&mut mem), Step::Running);
        p.on_crash();
        assert_eq!(p.state_key(), Value::Int(0));
        // Shared memory survives the crash (non-volatile).
        assert_eq!(mem.peek(addr), Value::Int(9));
        // Re-run from the beginning.
        assert_eq!(p.step(&mut mem), Step::Running);
        assert_eq!(p.step(&mut mem), Step::Decided(Value::Int(9)));
    }

    #[test]
    fn rebinding_roundtrips_through_its_inverse() {
        let mut map = Rebinding::identity(4);
        // Swap cells 1 and 3 (the shape an orbit transposition produces).
        map.map(Addr(1), Addr(3));
        map.map(Addr(3), Addr(1));
        assert_eq!(map.lookup(Addr(0)), Addr(0));
        assert_eq!(map.lookup(Addr(1)), Addr(3));
        let inv = map.inverse();
        for a in 0..4 {
            assert_eq!(inv.lookup(map.lookup(Addr(a))), Addr(a));
        }
        assert_eq!(Rebinding::identity(4).inverse(), Rebinding::identity(4));
    }

    #[test]
    #[should_panic(expected = "not a bijection")]
    fn non_bijective_rebinding_has_no_inverse() {
        let mut map = Rebinding::identity(3);
        map.map(Addr(0), Addr(2));
        let _ = map.inverse();
    }

    #[test]
    #[should_panic(expected = "does not support address rebinding")]
    fn default_rebind_panics() {
        let mut mem = Memory::new();
        let addr = mem.alloc_register(Value::Bottom);
        let mut p = TwoStep {
            addr,
            input: Value::Int(1),
            pc: 0,
        };
        assert_eq!(p.referenced_cells(), None, "default is not enumerable");
        p.rebind(&Rebinding::identity(1));
    }

    #[test]
    fn boxed_clone_is_independent() {
        let mut mem = Memory::new();
        let addr = mem.alloc_register(Value::Bottom);
        let p: Box<dyn Program> = Box::new(TwoStep {
            addr,
            input: Value::Int(1),
            pc: 0,
        });
        let mut q = p.clone();
        q.step(&mut mem);
        assert_eq!(p.state_key(), Value::Int(0));
        assert_eq!(q.state_key(), Value::Int(1));
    }
}
