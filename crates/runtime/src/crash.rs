//! The crash adversary, described once.
//!
//! The paper's adversary is parameterized three ways: how many crash
//! events it may inject (the *budget*), whether a crash hits one process
//! or all of them at once (*independent* vs *simultaneous*, Sections 1
//! and 2), and whether it may crash a process whose current run has
//! already decided (forcing *re-runs*, which the agreement property of
//! Section 1 quantifies over).
//!
//! Historically each layer of this crate re-derived those rules for
//! itself — the exhaustive checker ([`explore`](crate::explore)), the
//! randomized tester ([`RandomScheduler`](crate::sched::RandomScheduler))
//! and the `E_A` scheduler
//! ([`BudgetedCrashScheduler`](crate::sched::BudgetedCrashScheduler)) —
//! and the copies drifted: the simultaneous branch of the model checker
//! reset decided processes even when post-decide crashes were disabled,
//! and the random scheduler emitted [`Action::CrashAll`] after every
//! process had decided. [`CrashModel`] is now the single source of truth
//! for crash legality; every layer routes its decisions through it.
//!
//! ## Semantics
//!
//! * A crash of process `p` is legal iff the budget is not exhausted and
//!   (`p`'s current run is undecided, or post-decide crashes are
//!   enabled).
//! * A simultaneous crash ([`Action::CrashAll`]) wipes **every** process
//!   — that is its definition; there is no partial `CrashAll`. It is
//!   therefore legal iff the budget is not exhausted and (no process's
//!   current run has decided, or post-decide crashes are enabled). This
//!   is the exact simultaneous analogue of the independent rule, which is
//!   what keeps the exhaustive and randomized layers in agreement.

use crate::program::Pid;
use crate::sched::Action;

/// Whether crashes hit one process at a time or every process at once.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CrashMode {
    /// Any single process may crash at any step boundary (Section 1's
    /// general model, Section 3's lower bounds).
    Independent,
    /// All processes crash together (the Section 2 model of Theorem 1).
    Simultaneous,
}

/// The complete description of a crash adversary: budget, crash mode and
/// post-decide policy. Shared by [`explore`](crate::explore),
/// [`RandomScheduler`](crate::sched::RandomScheduler) and
/// [`BudgetedCrashScheduler`](crate::sched::BudgetedCrashScheduler).
///
/// # Example
///
/// ```
/// use rc_runtime::{CrashModel, CrashMode};
///
/// let model = CrashModel::independent(2).after_decide(true);
/// assert_eq!(model.budget, 2);
/// assert_eq!(model.mode, CrashMode::Independent);
/// assert!(model.may_crash(true), "post-decide crashes enabled");
///
/// let strict = CrashModel::simultaneous(1);
/// assert!(strict.may_crash_all(&[false, false]));
/// assert!(!strict.may_crash_all(&[true, false]), "would reset a decided run");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CrashModel {
    /// Maximum number of crash events along one execution.
    pub budget: usize,
    /// Independent (per-process) or simultaneous (all-at-once) crashes.
    pub mode: CrashMode,
    /// Whether a crash may hit a process whose current run has already
    /// decided (forcing a re-run whose output agreement must also cover).
    pub crash_after_decide: bool,
}

impl Default for CrashModel {
    /// One independent crash, no post-decide crashes — the cheapest model
    /// that still exercises recovery.
    fn default() -> Self {
        CrashModel::independent(1)
    }
}

impl CrashModel {
    /// An independent-crash adversary with the given budget (post-decide
    /// crashes disabled; enable with [`after_decide`](Self::after_decide)).
    pub fn independent(budget: usize) -> Self {
        CrashModel {
            budget,
            mode: CrashMode::Independent,
            crash_after_decide: false,
        }
    }

    /// A simultaneous-crash adversary with the given budget (post-decide
    /// crashes disabled; enable with [`after_decide`](Self::after_decide)).
    pub fn simultaneous(budget: usize) -> Self {
        CrashModel {
            budget,
            mode: CrashMode::Simultaneous,
            crash_after_decide: false,
        }
    }

    /// The crash-free adversary.
    pub fn none() -> Self {
        CrashModel::independent(0)
    }

    /// Builder: sets the post-decide crash policy.
    #[must_use]
    pub fn after_decide(mut self, allowed: bool) -> Self {
        self.crash_after_decide = allowed;
        self
    }

    /// Crash events remaining after `used` have been injected.
    pub fn remaining(&self, used: usize) -> usize {
        self.budget.saturating_sub(used)
    }

    /// Whether the budget is exhausted after `used` injected crashes.
    pub fn exhausted(&self, used: usize) -> bool {
        self.remaining(used) == 0
    }

    /// Whether a process whose current run has (`decided = true`) / has
    /// not (`decided = false`) decided may be crashed, budget aside.
    pub fn may_crash(&self, decided: bool) -> bool {
        self.crash_after_decide || !decided
    }

    /// Whether a simultaneous crash is legal given the decided flags,
    /// budget aside: a `CrashAll` wipes *every* process, so it is only
    /// legal while no current run has decided — unless post-decide
    /// crashes are enabled.
    pub fn may_crash_all(&self, decided: &[bool]) -> bool {
        self.crash_after_decide || decided.iter().all(|d| !d)
    }

    /// Bitmask form of [`may_crash_all`](Self::may_crash_all), used by
    /// the model checker's packed decided flags: bit `p` set means
    /// process `p`'s current run has decided.
    pub fn may_crash_all_mask(&self, decided_mask: u64) -> bool {
        self.crash_after_decide || decided_mask == 0
    }

    /// The processes an independent-crash adversary may crash, given the
    /// decided flags (budget aside).
    pub fn crash_candidates(&self, decided: &[bool]) -> Vec<Pid> {
        decided
            .iter()
            .enumerate()
            .filter(|(_, &d)| self.may_crash(d))
            .map(|(p, _)| p)
            .collect()
    }

    /// Every crash action this model permits from a state with the given
    /// decided flags and `used` crashes so far — the exhaustive checker's
    /// branch enumeration.
    pub fn legal_crashes(&self, decided: &[bool], used: usize) -> Vec<Action> {
        if self.exhausted(used) {
            return Vec::new();
        }
        match self.mode {
            CrashMode::Simultaneous => {
                if self.may_crash_all(decided) {
                    vec![Action::CrashAll]
                } else {
                    Vec::new()
                }
            }
            CrashMode::Independent => self
                .crash_candidates(decided)
                .into_iter()
                .map(Action::Crash)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_accessors() {
        let m = CrashModel::independent(3).after_decide(true);
        assert_eq!(m.budget, 3);
        assert_eq!(m.mode, CrashMode::Independent);
        assert!(m.crash_after_decide);
        assert_eq!(m.remaining(1), 2);
        assert!(!m.exhausted(2));
        assert!(m.exhausted(3));
        assert!(m.exhausted(4), "saturating, not underflowing");
        assert_eq!(CrashModel::none().budget, 0);
        assert_eq!(CrashModel::default(), CrashModel::independent(1));
    }

    #[test]
    fn independent_candidates_respect_post_decide_policy() {
        let strict = CrashModel::independent(1);
        assert_eq!(strict.crash_candidates(&[false, true, false]), vec![0, 2]);
        let lax = strict.after_decide(true);
        assert_eq!(lax.crash_candidates(&[false, true, false]), vec![0, 1, 2]);
    }

    #[test]
    fn crash_all_forbidden_while_any_run_has_decided() {
        let strict = CrashModel::simultaneous(1);
        assert!(strict.may_crash_all(&[false, false]));
        assert!(!strict.may_crash_all(&[false, true]));
        assert!(!strict.may_crash_all(&[true, true]));
        let lax = strict.after_decide(true);
        assert!(lax.may_crash_all(&[true, true]));
        // The mask form agrees with the slice form.
        assert!(strict.may_crash_all_mask(0b00));
        assert!(!strict.may_crash_all_mask(0b10));
        assert!(lax.may_crash_all_mask(0b11));
    }

    #[test]
    fn legal_crashes_enumeration() {
        let m = CrashModel::independent(1);
        assert_eq!(
            m.legal_crashes(&[false, true], 0),
            vec![Action::Crash(0)],
            "decided process excluded"
        );
        assert!(m.legal_crashes(&[false, false], 1).is_empty(), "budget");
        let s = CrashModel::simultaneous(2);
        assert_eq!(s.legal_crashes(&[false, false], 1), vec![Action::CrashAll]);
        assert!(s.legal_crashes(&[true, false], 1).is_empty());
        assert_eq!(
            s.after_decide(true).legal_crashes(&[true, false], 1),
            vec![Action::CrashAll]
        );
    }
}
