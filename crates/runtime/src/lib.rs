//! # rc-runtime — crash–recovery shared-memory simulation substrate
//!
//! This crate implements the execution model of
//! *“When Is Recoverable Consensus Harder Than Consensus?”* (PODC 2022):
//! an asynchronous shared-memory system in which
//!
//! * **shared memory is non-volatile** — process crashes never affect it;
//! * **process-local memory is volatile** — a crash reinitializes a
//!   process's local state *including its program counter*, and on recovery
//!   the process re-executes its code from the beginning;
//! * crashes are **independent** (any single process, at any step boundary)
//!   or **simultaneous** (all processes at once), per Section 1 and
//!   Section 2 of the paper.
//!
//! ## Pieces
//!
//! * [`Memory`] — the non-volatile heap: registers and typed objects
//!   (specified by `rc-spec`), each access atomic.
//! * [`Program`] — algorithms as explicit state machines; each
//!   [`Program::step`] performs **at most one** shared-memory access, so a
//!   scheduler can interleave and crash programs at every point the paper's
//!   adversary can. [`Program::on_crash`] wipes local state (the input
//!   value is retained across runs, matching the paper's assumption; the
//!   `rc-core` input-masking transformation removes even that).
//! * [`sched`] — schedulers: seeded random (with crash injection),
//!   round-robin, and fully scripted (for the paper's hand-crafted
//!   adversarial scenarios).
//! * [`run`] — the simulation loop, producing an [`Execution`] with every
//!   decision from every run of every process plus a replayable [`Trace`].
//! * [`CrashModel`] — the crash adversary described once (budget,
//!   independent vs simultaneous mode, post-decide policy) and shared by
//!   the exact and randomized layers, so they cannot drift apart.
//! * [`explore`] — a bounded-exhaustive model checker: an iterative
//!   worklist DFS over *all* interleavings and crash placements (up to a
//!   crash budget) with hash-consed full-fidelity state memoization
//!   ([`ValueInterner`]), an opt-in parallel frontier mode
//!   ([`ExploreConfig::threads`]) and opt-in process-symmetry reduction
//!   ([`explore_symmetric`] + [`SymmetrySpec`]) — including *full-state*
//!   symmetry, where declared per-process cells permute with their
//!   owners and relocated programs are rebound ([`Program::rebind`] +
//!   [`SymmetrySpec::with_owned_cells`]) — plus opt-in footprint-driven
//!   **partial-order reduction** ([`ExploreConfig::por`]: persistent +
//!   sleep sets, gated by the ample-set lint [`lint_ample`]).
//! * [`footprint`] — cell-access footprint analysis over the program
//!   catalog: an instrumenting recorder plus a fixpoint walk of each
//!   program's memoized local-state graph, feeding a declaration linter
//!   ([`lint_system`]), a static step-independence relation
//!   ([`StaticIndependence`], the POR prerequisite), the per-local-state
//!   access maps POR consumes ([`analyze_system_states`], cached per
//!   catalog id via [`system_analysis_cached`]) and the symmetry
//!   validation.
//! * `scalarset` — the scalarset equivariance certifier
//!   ([`lint_scalarset`]): proves a declared cross-read cell family
//!   ([`SymmetrySpec::with_scalarset`]) is scanned as an
//!   order-insensitive fold, which licenses permuting the family with
//!   the process slots during symmetry reduction.
//! * [`swarm`] — randomized swarm verification past the exhaustive
//!   frontier: millions of deterministically-seeded schedules fanned
//!   across all cores ([`swarm()`](swarm::swarm)), exact
//!   distinct-final-state coverage through the packed tables,
//!   per-seed deterministic replay ([`replay_seed`]) and
//!   delta-debugging of violating schedules down to 1-minimal,
//!   [`CrashModel`]-legal witnesses that re-verify through the
//!   [`WitnessLog`] replay path ([`shrink_schedule`]).
//! * [`threaded`] — a real-thread executor (`parking_lot` mutex per object,
//!   one OS thread per process) for wall-clock benchmarks.
//! * [`verify`] — agreement/validity/termination checkers for consensus-
//!   style outputs.
//!
//! ## Example: a trivial 1-step program under the simulator
//!
//! ```
//! use rc_runtime::{run, Execution, MemOps, Memory, Program, RunOptions, Step};
//! use rc_runtime::sched::RoundRobin;
//! use rc_spec::Value;
//!
//! #[derive(Clone, Debug)]
//! struct WriteAndDecide { addr: rc_runtime::Addr, input: Value }
//!
//! impl Program for WriteAndDecide {
//!     fn step(&mut self, mem: &mut dyn MemOps) -> Step {
//!         mem.write_register(self.addr, self.input.clone());
//!         Step::Decided(self.input.clone())
//!     }
//!     fn on_crash(&mut self) {}
//!     fn state_key(&self) -> Value { Value::Unit }
//!     fn boxed_clone(&self) -> Box<dyn Program> { Box::new(self.clone()) }
//! }
//!
//! let mut mem = Memory::new();
//! let addr = mem.alloc_register(Value::Bottom);
//! let mut programs: Vec<Box<dyn Program>> = vec![
//!     Box::new(WriteAndDecide { addr, input: Value::Int(7) }),
//! ];
//! let mut sched = RoundRobin::new();
//! let exec: Execution = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
//! assert_eq!(exec.outputs[0], vec![Value::Int(7)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod canon;
mod crash;
mod exec;
mod explore;
mod intern;
mod memory;
mod program;
mod scalarset;
mod storage;
mod trace;

pub mod footprint;
pub mod sched;
pub mod swarm;
pub mod threaded;
pub mod verify;

pub use canon::SymmetrySpec;
pub use crash::{CrashMode, CrashModel};
pub use exec::{run, Execution, RunOptions};
pub use explore::{
    explore, explore_parallel, explore_symmetric, explore_symmetric_with_stats, explore_with_stats,
    lint_ample, AmpleLintReport, ExploreConfig, ExploreOutcome, ExploreStats,
    SymmetricSystemFactory, SystemFactory, ViolationKind,
};
pub use footprint::{
    analysis_fixpoint_runs, analyze_system, analyze_system_states, lint_system, lint_with_analysis,
    system_analysis_cached, AccessKind, AccessModes, AnalysisBudget, CellSet, FootprintError,
    LintReport, LocalStateInfo, ProcessFootprint, ProcessStateMap, StaticIndependence,
    SystemAnalysis, SystemFootprint,
};
// The scalarset equivariance certifier: `lint_scalarset` is the
// `tables lint` entry; the engines consult the cached certificate
// internally before permuting any declared family.
pub use scalarset::{lint_scalarset, ScalarsetReport};
// `Resolved`/`ShardInterner` are exported for the sharded-reconciliation
// property suite in tests/proptest_runtime.rs (and as the documented
// worker-local overflow API); the engine-internal `ShardedStateTable`
// deliberately is not.
pub use intern::{Resolved, ShardInterner, ValueInterner};
pub use memory::{Addr, Cell, MemOps, Memory};
pub use program::{Pid, Program, Rebinding, Step};
// The tiered storage layer: the packed-key codec and prefilter are
// exported for the property suite in tests/proptest_runtime.rs;
// `StorageTier` is the `ExploreConfig` knob selecting the visited-set
// backend; `WitnessLog` is the compacted parent-link log both engines
// now build (and tests replay).
pub use storage::{
    delta_decode, delta_encode, hash_packed, pack_key, pack_key_into, packed_key_len, unpack_key,
    KeyFilter, PackedStateTable, StorageTier, WitnessLog,
};
// The swarm service: the engine (`swarm`/`swarm_with_progress`), the
// per-seed replay and the schedule shrinker, re-exported flat for the
// `swarm` binary and the invariant test suites.
pub use swarm::{
    is_subsequence, replay_schedule, replay_seed, shrink_schedule, swarm_with_progress,
    ScheduleReplay, SeedRun, ShrinkError, ShrunkWitness, SwarmConfig, SwarmFactory, SwarmProgress,
    SwarmReport, SwarmViolation,
};
pub use trace::{Trace, TraceEvent};
