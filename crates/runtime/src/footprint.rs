//! Cell-access footprint analysis over the guest-program catalog.
//!
//! The model checker's two soundness-critical *inputs* —
//! [`Program::referenced_cells`](crate::Program::referenced_cells) and
//! [`SymmetrySpec::with_owned_cells`](crate::SymmetrySpec::with_owned_cells)
//! — are hand-written per factory, and an under-declaration silently
//! breaks the exhaustive-exploration quotient. This module derives the
//! same information *from the programs themselves*: an instrumenting
//! [`MemOps`] recorder ([`ProbeMem`], internal) tags every shared-memory
//! access with `(Pid, Addr, AccessKind)`, and [`analyze_system`] walks
//! each program's memoized local-state graph to a fixpoint, producing a
//! sound per-process cell footprint with read/write modes.
//!
//! ## The walk
//!
//! Per process, local states are memoized on
//! [`state_key`](crate::Program::state_key) (the same key-completeness
//! contract the checker's memoization leans on: equal keys ⇒ identical
//! behaviour forever, so one representative clone per key suffices).
//! From each state the analyzer probes every enabled internal
//! alternative ([`choices`](crate::Program::choices) /
//! [`step_choice`](crate::Program::step_choice); deterministic programs
//! have exactly one) once per possible *observation*:
//!
//! * a **write** determines its successor outright (the written value is
//!   added to the cell's value domain);
//! * a **read** branches over the cell's current value domain — every
//!   value the cell can hold: its initial value plus every value any
//!   analyzed branch of any process ever wrote to it;
//! * an **RMW** ([`MemOps::apply`]) branches over the object-state
//!   domain, computing each branch's response and next state through the
//!   type's [`try_apply`](rc_spec::ObjectType::try_apply) (invalid
//!   `(state, op)` combinations are discarded — the real engine would
//!   panic on them, so they bound no reachable behaviour);
//! * **crash edges**: every discovered state also takes an
//!   [`on_crash`](crate::Program::on_crash) edge (optional, on by
//!   default — see [`analyze_system`]'s `include_crash`).
//!
//! When a cell's domain grows, every read/RMW site on that cell (any
//! process) is re-probed with the new values — a classic monotone
//! fixpoint. A probe that panics inside guest code is treated as an
//! infeasible branch and discarded (the value fed to it was an
//! over-approximation; a *feasible* panic would equally abort the real
//! exploration).
//!
//! ## Soundness
//!
//! The analysis over-approximates: by induction over execution prefixes,
//! every value a reachable memory state can hold is in the analyzed
//! domain of its cell, and every local state a process can reach is
//! memoized — so every access any real execution performs is recorded.
//! The converse does not hold (domains ignore cross-process ordering),
//! so the footprint may include accesses no feasible execution performs;
//! for the consumers below, over-approximation is the safe direction.
//! Programs whose state space (or written-value domain) is unbounded
//! exhaust the [`AnalysisBudget`] and report
//! [`FootprintError::BudgetExceeded`] instead of looping — callers then
//! fall back to the hand-written declarations.
//!
//! ## Consumers
//!
//! * [`lint_system`] — the declaration linter: analyzed footprint vs
//!   `referenced_cells`/owned-cell declarations. Under-declaration is a
//!   hard error, over-declaration a lost-reduction warning, and cells
//!   touched by exactly one process are reported as derived owned-cell
//!   candidates. The `tables lint` CLI (rc-bench) runs this across the
//!   whole catalog as experiment E14.
//! * [`StaticIndependence`] — steps of distinct processes whose write
//!   footprint is disjoint from each other's access footprint commute in
//!   every state; exported for the partial-order-reduction roadmap item
//!   and cross-validated dynamically by the explore engines
//!   ([`ExploreConfig::cross_validate_independence`](crate::ExploreConfig::cross_validate_independence)).
//! * the symmetry validation in `explore` uses analyzed footprints as
//!   reference sets where the analysis converges, so owned-cell systems
//!   built from programs without `referenced_cells` are validated (or
//!   rejected) on their *actual* accesses.

use crate::canon::SymmetrySpec;
use crate::memory::{Addr, Cell, MemOps, Memory};
use crate::program::{Pid, Program, Step};
use rc_spec::{Operation, TypeHandle, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

thread_local! {
    /// Whether the current thread is inside a caught probe (see
    /// [`quiet_probe`]).
    static IN_PROBE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Runs `f` — which must catch every panic it provokes — with the panic
/// hook silenced for this thread. Probe panics are control flow here
/// (infeasible branches of the value-domain over-approximation, or a
/// rebind-support check), not defects, and the default hook would spam
/// stderr with a backtrace per caught branch. The first call swaps in a
/// process-global hook that delegates to the previous one except on
/// threads currently probing, so unrelated panics keep their reports.
pub(crate) fn quiet_probe<T>(f: impl FnOnce() -> T) -> T {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !IN_PROBE.with(std::cell::Cell::get) {
                prev(info);
            }
        }));
    });
    struct Reset(bool);
    impl Drop for Reset {
        fn drop(&mut self) {
            IN_PROBE.with(|p| p.set(self.0));
        }
    }
    let _reset = Reset(IN_PROBE.with(|p| p.replace(true)));
    f()
}

/// The mode of one shared-memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessKind {
    /// `read_register` / `read_object`.
    Read,
    /// `write_register`.
    Write,
    /// `apply` — an atomic read-modify-write.
    Rmw,
}

/// The set of access modes a process uses on one cell.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessModes {
    /// The cell is read (`read_register`/`read_object`).
    pub read: bool,
    /// The cell is written (`write_register`).
    pub write: bool,
    /// The cell receives RMW operations (`apply`).
    pub rmw: bool,
}

impl AccessKind {
    /// Whether the access can change the cell (write or RMW).
    pub fn mutates(self) -> bool {
        matches!(self, AccessKind::Write | AccessKind::Rmw)
    }
}

impl AccessModes {
    fn record(&mut self, kind: AccessKind) {
        match kind {
            AccessKind::Read => self.read = true,
            AccessKind::Write => self.write = true,
            AccessKind::Rmw => self.rmw = true,
        }
    }

    /// Whether any mode can change the cell (write or RMW).
    pub fn mutates(&self) -> bool {
        self.write || self.rmw
    }

    /// A compact `r`/`w`/`u` (update) rendering, e.g. `rw`, `u`, `r`.
    pub fn label(&self) -> String {
        let mut s = String::new();
        if self.read {
            s.push('r');
        }
        if self.write {
            s.push('w');
        }
        if self.rmw {
            s.push('u');
        }
        s
    }
}

/// The analyzed footprint of one process.
#[derive(Clone, Debug, Default)]
pub struct ProcessFootprint {
    /// Every cell the process may access, with its modes.
    pub cells: BTreeMap<Addr, AccessModes>,
    /// Number of memoized local states the walk visited.
    pub local_states: usize,
}

impl ProcessFootprint {
    /// The accessed cells (any mode), ascending.
    pub fn accessed(&self) -> Vec<Addr> {
        self.cells.keys().copied().collect()
    }

    /// The cells the process may mutate (write or RMW), ascending.
    pub fn mutated(&self) -> Vec<Addr> {
        self.cells
            .iter()
            .filter(|(_, m)| m.mutates())
            .map(|(&a, _)| a)
            .collect()
    }
}

/// The analyzed footprints of a whole system, one per process.
#[derive(Clone, Debug)]
pub struct SystemFootprint {
    /// `per_process[p]` is process `p`'s footprint.
    pub per_process: Vec<ProcessFootprint>,
    /// Total number of `step` probes the fixpoint ran.
    pub probes: usize,
}

impl SystemFootprint {
    /// Number of processes.
    pub fn n(&self) -> usize {
        self.per_process.len()
    }
}

/// Caps on the fixpoint walk, so unbounded-state guests fail fast
/// instead of looping.
#[derive(Clone, Copy, Debug)]
pub struct AnalysisBudget {
    /// Maximum memoized local states, summed over all processes.
    pub max_local_states: usize,
    /// Maximum `step` probes.
    pub max_probes: usize,
}

impl Default for AnalysisBudget {
    fn default() -> Self {
        AnalysisBudget {
            max_local_states: 1 << 16,
            max_probes: 1 << 21,
        }
    }
}

/// Why a footprint analysis gave up.
#[derive(Clone, Debug)]
pub enum FootprintError {
    /// The walk exceeded its [`AnalysisBudget`] — the local-state graph
    /// or a written-value domain is too large (or unbounded).
    BudgetExceeded {
        /// The process whose probe hit the cap.
        pid: Pid,
        /// Memoized local states at the point of failure.
        local_states: usize,
        /// Step probes run at the point of failure.
        probes: usize,
    },
    /// A single `step` performed more than one shared-memory access,
    /// violating the [`Program`] contract the whole execution model
    /// rests on.
    MultipleAccesses {
        /// The offending process.
        pid: Pid,
        /// The local state (its `state_key`) whose step misbehaved.
        state_key: Value,
    },
    /// A probe hit a type-confused access (register op on an object
    /// cell or vice versa, or a `Read` on a non-readable type).
    TypeConfusion {
        /// The offending process.
        pid: Pid,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for FootprintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FootprintError::BudgetExceeded {
                pid,
                local_states,
                probes,
            } => write!(
                f,
                "footprint analysis budget exceeded probing p{pid} \
                 ({local_states} local states, {probes} probes)"
            ),
            FootprintError::MultipleAccesses { pid, state_key } => write!(
                f,
                "p{pid} performs more than one shared-memory access in a \
                 single step (from local state {state_key}); the Program \
                 contract allows at most one"
            ),
            FootprintError::TypeConfusion { pid, message } => {
                write!(f, "p{pid} probe hit a type-confused access: {message}")
            }
        }
    }
}

impl std::error::Error for FootprintError {}

/// What kind of cell sits at each address (probing needs the object
/// type to compute RMW transitions).
#[derive(Clone)]
enum ProbeKind {
    Register,
    Object(TypeHandle),
}

/// The instrumenting [`MemOps`]: records the step's (first) access and
/// answers it with the `branch`-th value of the cell's current domain.
/// Subsequent accesses in the same step are counted (contract
/// violation) and answered benignly so the probe can finish.
struct ProbeMem<'a> {
    kinds: &'a [ProbeKind],
    domains: &'a [BTreeSet<Value>],
    branch: usize,
    /// The first access: `(cell index, kind)`.
    site: Option<(usize, AccessKind)>,
    /// Values this probe wrote (register writes and RMW next-states) —
    /// merged into the domains after the branch loop.
    wrote: Vec<(usize, Value)>,
    /// Accesses beyond the first (each one a contract violation).
    extra: usize,
    /// `false` when the branch fed an RMW a domain state its operation
    /// rejects — the branch is infeasible and its successor discarded.
    valid: bool,
    /// A type-confused access, reported as [`FootprintError::TypeConfusion`].
    fault: Option<String>,
}

impl<'a> ProbeMem<'a> {
    fn new(kinds: &'a [ProbeKind], domains: &'a [BTreeSet<Value>], branch: usize) -> Self {
        ProbeMem {
            kinds,
            domains,
            branch,
            site: None,
            wrote: Vec::new(),
            extra: 0,
            valid: true,
            fault: None,
        }
    }

    /// Records the access; returns `true` iff it is the step's first.
    fn first(&mut self, cell: usize, kind: AccessKind) -> bool {
        if self.site.is_none() {
            self.site = Some((cell, kind));
            true
        } else {
            self.extra += 1;
            false
        }
    }

    fn branch_value(&self, cell: usize) -> Value {
        self.domains[cell]
            .iter()
            .nth(self.branch)
            .cloned()
            .expect("probe branch indexes into the cell's domain")
    }
}

impl MemOps for ProbeMem<'_> {
    fn read_register(&mut self, addr: Addr) -> Value {
        let cell = addr.index();
        if !self.first(cell, AccessKind::Read) {
            return Value::Bottom;
        }
        if !matches!(self.kinds[cell], ProbeKind::Register) {
            self.fault = Some(format!("{addr} is an object, not a register"));
            return Value::Bottom;
        }
        self.branch_value(cell)
    }

    fn write_register(&mut self, addr: Addr, value: Value) {
        let cell = addr.index();
        if !self.first(cell, AccessKind::Write) {
            return;
        }
        if !matches!(self.kinds[cell], ProbeKind::Register) {
            self.fault = Some(format!("{addr} is an object, not a register"));
            return;
        }
        self.wrote.push((cell, value));
    }

    fn read_object(&mut self, addr: Addr) -> Value {
        let cell = addr.index();
        if !self.first(cell, AccessKind::Read) {
            return Value::Bottom;
        }
        match &self.kinds[cell] {
            ProbeKind::Object(ty) if ty.is_readable() => self.branch_value(cell),
            ProbeKind::Object(ty) => {
                self.fault = Some(format!(
                    "type {} is not readable; Read is not available",
                    ty.name()
                ));
                Value::Bottom
            }
            ProbeKind::Register => {
                self.fault = Some(format!("{addr} is a register, not an object"));
                Value::Bottom
            }
        }
    }

    fn apply(&mut self, addr: Addr, op: &Operation) -> Value {
        let cell = addr.index();
        if !self.first(cell, AccessKind::Rmw) {
            return Value::Bottom;
        }
        match &self.kinds[cell] {
            ProbeKind::Object(ty) => {
                let state = self.branch_value(cell);
                match ty.try_apply(&state, op) {
                    Ok(t) => {
                        self.wrote.push((cell, t.next));
                        t.response
                    }
                    Err(_) => {
                        // The real engine's `apply` would panic here, so
                        // no reachable execution performs this (state,
                        // op) combination: discard the branch.
                        self.valid = false;
                        Value::Bottom
                    }
                }
            }
            ProbeKind::Register => {
                self.fault = Some(format!("{addr} is a register, not an object"));
                Value::Bottom
            }
        }
    }
}

/// One probed `(choice, branch)` transition of a memoized local state —
/// the full edge record the scalarset certifier matches under family
/// transpositions (the footprint consumers only need the coarser
/// site/successor projections).
#[derive(Clone, Debug)]
pub(crate) struct ChoiceEdge {
    /// The choice id ([`Program::choices`]) this edge belongs to.
    pub(crate) choice: usize,
    /// The step's access site, `(cell index, kind)`; `None` when the
    /// branch touches no shared cell.
    pub(crate) site: Option<(usize, AccessKind)>,
    /// For read/RMW sites: the domain value the branch observed.
    pub(crate) observed: Option<Value>,
    /// The register value or RMW next-state the branch wrote.
    pub(crate) wrote: Option<(usize, Value)>,
    /// Successor state index; `None` for infeasible/panicking branches.
    pub(crate) succ: Option<usize>,
    /// The decided output, when the branch decides.
    pub(crate) output: Option<Value>,
}

/// `(choice id, access site)` for one enabled choice of a state.
pub(crate) type ChoiceSite = (usize, Option<(usize, AccessKind)>);

/// One process's memoized local-state graph during the walk.
pub(crate) struct PidStates {
    /// Representative clone + decided flag per state index.
    pub(crate) states: Vec<(Box<dyn Program>, bool)>,
    /// `(state_key, decided)` → state index.
    pub(crate) index: BTreeMap<(Value, bool), usize>,
    footprint: ProcessFootprint,
    /// Per state: `(choice id, access site)` per enabled choice, in
    /// [`Program::choices`] order (sites discovered on branch 0).
    pub(crate) choice_sites: Vec<Vec<ChoiceSite>>,
    /// Per state: every probed `(choice, branch)` edge.
    pub(crate) edges: Vec<Vec<ChoiceEdge>>,
    /// Per state: whether the representative reports
    /// [`Program::scalarset_pinned`].
    pub(crate) pinned: Vec<bool>,
    /// Per state: whether some probed branch of the step decides.
    may_decide: Vec<bool>,
    /// Per state: step-successor state indices (all probed branches).
    pub(crate) step_succ: Vec<BTreeSet<usize>>,
    /// Per state: the crash-restart successor (`include_crash` walks).
    pub(crate) crash_succ: Vec<Option<usize>>,
}

/// The raw result of one fixpoint walk: the memoized per-process state
/// graphs plus the probe count.
pub(crate) struct Walk {
    pub(crate) pids: Vec<PidStates>,
    probes: usize,
    /// The fixpoint value domains, per cell (final, post-convergence).
    pub(crate) domains: Vec<BTreeSet<Value>>,
}

/// Global fixpoint-run counter, bumped once per [`walk_system`] call.
/// Exposed through [`analysis_fixpoint_runs`] so tests can assert the
/// analysis cache really prevents recomputation.
static FIXPOINT_RUNS: AtomicUsize = AtomicUsize::new(0);

/// Number of fixpoint walks run by this process so far (all threads).
pub fn analysis_fixpoint_runs() -> usize {
    FIXPOINT_RUNS.load(Ordering::Relaxed)
}

/// The shared fixpoint walk behind [`analyze_system`] and
/// [`analyze_system_states`]: memoizes every reachable local state per
/// process and records, per state, the step's access site, its step
/// successors, its crash successor and whether any branch decides.
pub(crate) fn walk_system(
    mem: &Memory,
    programs: &[Box<dyn Program>],
    include_crash: bool,
    budget: AnalysisBudget,
) -> Result<Walk, FootprintError> {
    FIXPOINT_RUNS.fetch_add(1, Ordering::Relaxed);
    let kinds: Vec<ProbeKind> = (0..mem.len())
        .map(|i| match mem.peek_cell(Addr(i)) {
            Cell::Register(_) => ProbeKind::Register,
            Cell::Object { ty, .. } => ProbeKind::Object(ty),
        })
        .collect();
    let mut domains: Vec<BTreeSet<Value>> = (0..mem.len())
        .map(|i| {
            let mut d = BTreeSet::new();
            d.insert(match mem.peek_cell(Addr(i)) {
                Cell::Register(v) => v,
                Cell::Object { state, .. } => state,
            });
            d
        })
        .collect();

    let mut pids: Vec<PidStates> = programs
        .iter()
        .map(|_| PidStates {
            states: Vec::new(),
            index: BTreeMap::new(),
            footprint: ProcessFootprint::default(),
            choice_sites: Vec::new(),
            edges: Vec::new(),
            pinned: Vec::new(),
            may_decide: Vec::new(),
            step_succ: Vec::new(),
            crash_succ: Vec::new(),
        })
        .collect();
    // Read/RMW sites per cell, for fixpoint re-probing on domain growth.
    let mut read_sites: Vec<BTreeSet<(Pid, usize)>> = vec![BTreeSet::new(); mem.len()];
    let mut work: VecDeque<(Pid, usize)> = VecDeque::new();
    let mut queued: BTreeSet<(Pid, usize)> = BTreeSet::new();
    let mut total_states = 0usize;
    let mut probes = 0usize;

    /// Memoizes `prog` (and, transitively, its crash restart) for `pid`;
    /// enqueues newly discovered states. Returns the index of the state
    /// `prog` memoized to, so the caller can record successor edges.
    #[allow(clippy::too_many_arguments)]
    fn insert(
        pid: Pid,
        prog: Box<dyn Program>,
        decided: bool,
        include_crash: bool,
        pids: &mut [PidStates],
        work: &mut VecDeque<(Pid, usize)>,
        queued: &mut BTreeSet<(Pid, usize)>,
        total_states: &mut usize,
        budget: &AnalysisBudget,
        probes: usize,
    ) -> Result<usize, FootprintError> {
        // Each pending entry carries the state index whose crash edge
        // leads to it (None for the original `prog`).
        let mut pending: Vec<(Box<dyn Program>, bool, Option<usize>)> = vec![(prog, decided, None)];
        let mut first = None;
        while let Some((prog, decided, from)) = pending.pop() {
            let key = (prog.state_key(), decided);
            let idx = match pids[pid].index.get(&key) {
                Some(&idx) => idx,
                None => {
                    *total_states += 1;
                    if *total_states > budget.max_local_states {
                        return Err(FootprintError::BudgetExceeded {
                            pid,
                            local_states: *total_states,
                            probes,
                        });
                    }
                    let idx = pids[pid].states.len();
                    if include_crash {
                        let mut crashed = prog.boxed_clone();
                        crashed.on_crash();
                        pending.push((crashed, false, Some(idx)));
                    }
                    pids[pid].pinned.push(prog.scalarset_pinned());
                    pids[pid].states.push((prog, decided));
                    pids[pid].index.insert(key, idx);
                    pids[pid].footprint.local_states += 1;
                    pids[pid].choice_sites.push(Vec::new());
                    pids[pid].edges.push(Vec::new());
                    pids[pid].may_decide.push(false);
                    pids[pid].step_succ.push(BTreeSet::new());
                    pids[pid].crash_succ.push(None);
                    if queued.insert((pid, idx)) {
                        work.push_back((pid, idx));
                    }
                    idx
                }
            };
            if let Some(from) = from {
                pids[pid].crash_succ[from] = Some(idx);
            }
            if first.is_none() {
                first = Some(idx);
            }
        }
        Ok(first.expect("insert memoizes at least the given state"))
    }

    for (pid, prog) in programs.iter().enumerate() {
        insert(
            pid,
            prog.boxed_clone(),
            false,
            include_crash,
            &mut pids,
            &mut work,
            &mut queued,
            &mut total_states,
            &budget,
            probes,
        )?;
    }

    while let Some((pid, sidx)) = work.pop_front() {
        queued.remove(&(pid, sidx));
        if pids[pid].states[sidx].1 {
            continue; // decided states take no further steps
        }
        // Probe every enabled choice: branch 0 discovers the choice's
        // access site, then the remaining branches of its domain
        // (reads/RMWs only). The domains are frozen during the loop;
        // growth is merged after. Re-probes (domain growth) rebuild the
        // state's per-choice records from scratch.
        let choice_ids = pids[pid].states[sidx].0.choices();
        assert!(
            !choice_ids.is_empty(),
            "Program::choices returned an empty list for p{pid}"
        );
        pids[pid].choice_sites[sidx].clear();
        pids[pid].edges[sidx].clear();
        let mut grew: Vec<(usize, Value)> = Vec::new();
        for &choice in &choice_ids {
            let mut branches = 1usize;
            let mut b = 0usize;
            while b < branches {
                probes += 1;
                if probes > budget.max_probes {
                    return Err(FootprintError::BudgetExceeded {
                        pid,
                        local_states: total_states,
                        probes,
                    });
                }
                let mut prog = pids[pid].states[sidx].0.boxed_clone();
                let mut probe = ProbeMem::new(&kinds, &domains, b);
                let outcome = quiet_probe(|| {
                    catch_unwind(AssertUnwindSafe(|| prog.step_choice(&mut probe, choice)))
                });
                if let Some(message) = probe.fault {
                    return Err(FootprintError::TypeConfusion { pid, message });
                }
                if probe.extra > 0 {
                    return Err(FootprintError::MultipleAccesses {
                        pid,
                        state_key: pids[pid].states[sidx].0.state_key(),
                    });
                }
                if b == 0 {
                    pids[pid].choice_sites[sidx].push((choice, probe.site));
                    if let Some((cell, kind)) = probe.site {
                        pids[pid]
                            .footprint
                            .cells
                            .entry(Addr(cell))
                            .or_default()
                            .record(kind);
                        if matches!(kind, AccessKind::Read | AccessKind::Rmw) {
                            read_sites[cell].insert((pid, sidx));
                            branches = domains[cell].len();
                        }
                    }
                }
                let observed = probe.site.and_then(|(cell, kind)| {
                    matches!(kind, AccessKind::Read | AccessKind::Rmw)
                        .then(|| domains[cell].iter().nth(b).cloned())
                        .flatten()
                });
                let wrote = probe.wrote.first().cloned();
                grew.append(&mut probe.wrote);
                b += 1;
                // A panicking or infeasible branch has no successor (the
                // fed value was an over-approximation); its access record
                // and writes-so-far stand.
                let (succ, output) = match outcome {
                    Ok(step) if probe.valid => {
                        let decided = matches!(step, Step::Decided(_));
                        let output = match &step {
                            Step::Decided(v) => Some(v.clone()),
                            Step::Running => None,
                        };
                        if decided {
                            pids[pid].may_decide[sidx] = true;
                        }
                        let succ = insert(
                            pid,
                            prog,
                            decided,
                            include_crash,
                            &mut pids,
                            &mut work,
                            &mut queued,
                            &mut total_states,
                            &budget,
                            probes,
                        )?;
                        pids[pid].step_succ[sidx].insert(succ);
                        (Some(succ), output)
                    }
                    _ => (None, None),
                };
                pids[pid].edges[sidx].push(ChoiceEdge {
                    choice,
                    site: probe.site,
                    observed,
                    wrote,
                    succ,
                    output,
                });
            }
        }
        for (cell, value) in grew {
            if domains[cell].insert(value) {
                for &(p, s) in &read_sites[cell] {
                    if queued.insert((p, s)) {
                        work.push_back((p, s));
                    }
                }
            }
        }
    }

    Ok(Walk {
        pids,
        probes,
        domains,
    })
}

/// One freshly probed `(choice, branch)` transition of a concrete
/// program object — like [`ChoiceEdge`], but with the successor as a
/// `(state_key, decided)` pair instead of a walk index, so edges of
/// *different* program objects (e.g. a rebound clone vs an orbit
/// sibling's representative) compare directly. Produced by
/// [`probe_state_edges`] for the scalarset certifier's dynamic checks.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct ProbedEdge {
    pub(crate) choice: usize,
    pub(crate) site: Option<(usize, AccessKind)>,
    pub(crate) observed: Option<Value>,
    pub(crate) wrote: Option<(usize, Value)>,
    pub(crate) succ: Option<(Value, bool)>,
    pub(crate) output: Option<Value>,
}

/// Probes every `(choice, branch)` transition of `prog` against the
/// given (already converged) value domains — the same probe loop as
/// [`walk_system`], but for one state of one concrete program object,
/// with successors reported by key. Errors on contract violations
/// (multiple accesses per step, type confusion).
pub(crate) fn probe_state_edges(
    mem: &Memory,
    domains: &[BTreeSet<Value>],
    prog: &dyn Program,
) -> Result<Vec<ProbedEdge>, String> {
    let kinds: Vec<ProbeKind> = (0..mem.len())
        .map(|i| match mem.peek_cell(Addr(i)) {
            Cell::Register(_) => ProbeKind::Register,
            Cell::Object { ty, .. } => ProbeKind::Object(ty),
        })
        .collect();
    let mut edges = Vec::new();
    let choice_ids = prog.choices();
    if choice_ids.is_empty() {
        return Err("Program::choices returned an empty list".into());
    }
    for &choice in &choice_ids {
        let mut branches = 1usize;
        let mut b = 0usize;
        while b < branches {
            let mut clone = prog.boxed_clone();
            let mut probe = ProbeMem::new(&kinds, domains, b);
            let outcome = quiet_probe(|| {
                catch_unwind(AssertUnwindSafe(|| clone.step_choice(&mut probe, choice)))
            });
            if let Some(message) = probe.fault {
                return Err(format!("type-confused access: {message}"));
            }
            if probe.extra > 0 {
                return Err(format!(
                    "more than one shared-memory access in a single step \
                     (from local state {})",
                    prog.state_key()
                ));
            }
            if b == 0 {
                if let Some((cell, kind)) = probe.site {
                    if matches!(kind, AccessKind::Read | AccessKind::Rmw) {
                        branches = domains[cell].len();
                    }
                }
            }
            let observed = probe.site.and_then(|(cell, kind)| {
                matches!(kind, AccessKind::Read | AccessKind::Rmw)
                    .then(|| domains[cell].iter().nth(b).cloned())
                    .flatten()
            });
            let wrote = probe.wrote.first().cloned();
            b += 1;
            let (succ, output) = match outcome {
                Ok(step) => {
                    if probe.valid {
                        let output = match &step {
                            Step::Decided(v) => Some(v.clone()),
                            Step::Running => None,
                        };
                        let decided = matches!(step, Step::Decided(_));
                        (Some((clone.state_key(), decided)), output)
                    } else {
                        (None, None)
                    }
                }
                Err(_) => (None, None),
            };
            edges.push(ProbedEdge {
                choice,
                site: probe.site,
                observed,
                wrote,
                succ,
                output,
            });
        }
    }
    Ok(edges)
}

/// Analyzes every process's cell footprint by walking the memoized
/// local-state graphs to a fixpoint (see the module docs).
///
/// `include_crash` adds [`on_crash`](Program::on_crash) edges to the
/// walk; exploration consumers keep it `true` (sound for every crash
/// model — extra edges only grow the over-approximation).
pub fn analyze_system(
    mem: &Memory,
    programs: &[Box<dyn Program>],
    include_crash: bool,
    budget: AnalysisBudget,
) -> Result<SystemFootprint, FootprintError> {
    let walk = walk_system(mem, programs, include_crash, budget)?;
    Ok(SystemFootprint {
        per_process: walk.pids.into_iter().map(|p| p.footprint).collect(),
        probes: walk.probes,
    })
}

/// A compact cell set over `cells + 1` bits: bit `i` is shared cell `i`,
/// and the last bit (index `cells`) is the **decision pseudo-cell** —
/// the analysis models every deciding step as an RMW on it, so the
/// agreement check and the `decided_value` slot count as a dependency
/// between any two steps that may decide (see [`SystemAnalysis`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellSet {
    words: Box<[u64]>,
}

impl CellSet {
    fn empty(bits: usize) -> Self {
        CellSet {
            words: vec![0u64; bits.div_ceil(64).max(1)].into_boxed_slice(),
        }
    }

    fn insert(&mut self, bit: usize) {
        self.words[bit / 64] |= 1u64 << (bit % 64);
    }

    /// Whether `bit` is in the set.
    pub fn contains(&self, bit: usize) -> bool {
        self.words
            .get(bit / 64)
            .is_some_and(|w| w & (1u64 << (bit % 64)) != 0)
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether the two sets share no bit.
    pub fn is_disjoint(&self, other: &CellSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & b == 0)
    }

    /// Whether every bit of `self` is in `other`.
    pub fn is_subset(&self, other: &CellSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// Unions `other` into `self`; returns whether `self` changed.
    fn union_with(&mut self, other: &CellSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            let merged = *a | b;
            changed |= merged != *a;
            *a = merged;
        }
        changed
    }

    /// The set bits, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            (0..64)
                .filter(move |b| word & (1u64 << b) != 0)
                .map(move |b| w * 64 + b)
        })
    }
}

/// The analyzed behaviour of one memoized local state: what its next
/// step touches *immediately* and what the process may touch on any
/// crash-free continuation *from this state onward*. The immediate sets
/// drive the sleep-set independence test; the future sets drive the
/// persistent-set test (see `explore`'s POR engine).
#[derive(Clone, Debug)]
pub struct LocalStateInfo {
    /// The state's `state_key`.
    pub key: Value,
    /// Whether the state is decided (no further steps).
    pub decided: bool,
    /// The step's single access site, `(cell index, kind)`, when the
    /// state offers exactly one choice; `None` when the step touches no
    /// shared cell **or** the state is internally nondeterministic
    /// (several choices — their union is in the immediate sets).
    pub site: Option<(usize, AccessKind)>,
    /// Whether some probed branch of the step decides.
    pub may_decide: bool,
    /// Cells the next step may access (site + the decision pseudo-cell
    /// when `may_decide`).
    pub imm_accessed: CellSet,
    /// Cells the next step may mutate.
    pub imm_mutated: CellSet,
    /// Cells any **crash-free** continuation from here may access
    /// (closure over step edges; includes this state's own step).
    pub future_accessed: CellSet,
    /// Cells any crash-free continuation from here may mutate.
    pub future_mutated: CellSet,
    /// Cells any continuation **including crash edges** may access —
    /// the crash-closure the ample-set lint checks the crash-free sets
    /// against.
    pub crash_future_accessed: CellSet,
    /// Cells any continuation including crash edges may mutate.
    pub crash_future_mutated: CellSet,
}

/// One process's per-local-state analysis: every memoized `(state_key,
/// decided)` state with its [`LocalStateInfo`].
#[derive(Clone, Debug)]
pub struct ProcessStateMap {
    /// Per-state info, in discovery order.
    pub infos: Vec<LocalStateInfo>,
    /// `(state_key, decided)` → index into `infos`.
    index: BTreeMap<(Value, bool), usize>,
    /// Whether the process's step-edge graph (crash edges excluded) is
    /// acyclic — the termination condition POR eligibility requires.
    pub step_acyclic: bool,
}

impl ProcessStateMap {
    /// Looks up the info of the state with the given key, if analyzed.
    pub fn lookup(&self, key: &Value, decided: bool) -> Option<&LocalStateInfo> {
        self.index
            .get(&(key.clone(), decided))
            .map(|&i| &self.infos[i])
    }
}

/// The per-local-state extension of [`SystemFootprint`]: everything
/// [`analyze_system`] computes plus, per process, a map from memoized
/// local state to immediate/future access footprints (crash-free and
/// crash-inclusive), the step-graph acyclicity flag, and the decision
/// pseudo-cell convention ([`CellSet`]). Built by
/// [`analyze_system_states`] in the same fixpoint walk, so it costs no
/// extra probes over the whole-system footprint.
#[derive(Clone, Debug)]
pub struct SystemAnalysis {
    /// The whole-system footprint (identical to
    /// `analyze_system(mem, programs, true, budget)`).
    pub footprint: SystemFootprint,
    /// `per_process[p]` — process `p`'s per-local-state map.
    pub per_process: Vec<ProcessStateMap>,
    /// Number of real shared cells; the decision pseudo-cell is bit
    /// `cells` of every [`CellSet`].
    pub cells: usize,
    /// The global fixpoint-run serial at which this analysis was
    /// computed (see [`analysis_fixpoint_runs`]); lets tests distinguish
    /// a cache hit from a recomputation.
    pub serial: usize,
}

impl SystemAnalysis {
    /// The decision pseudo-cell's bit index in this analysis's
    /// [`CellSet`]s.
    pub fn decision_cell(&self) -> usize {
        self.cells
    }

    /// Whether every process's step-edge graph is acyclic.
    pub fn step_graphs_acyclic(&self) -> bool {
        self.per_process.iter().all(|p| p.step_acyclic)
    }
}

/// Whether the step-edge graph over `infos` is acyclic (self-loops are
/// cycles). Iterative three-color DFS.
fn step_graph_acyclic(step_succ: &[BTreeSet<usize>]) -> bool {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color = vec![Color::White; step_succ.len()];
    for root in 0..step_succ.len() {
        if color[root] != Color::White {
            continue;
        }
        // (node, next-successor iterator position)
        let mut stack: Vec<(usize, std::collections::btree_set::Iter<'_, usize>)> = Vec::new();
        color[root] = Color::Gray;
        stack.push((root, step_succ[root].iter()));
        while let Some((node, iter)) = stack.last_mut() {
            match iter.next() {
                Some(&succ) => match color[succ] {
                    Color::Gray => return false,
                    Color::White => {
                        color[succ] = Color::Gray;
                        stack.push((succ, step_succ[succ].iter()));
                    }
                    Color::Black => {}
                },
                None => {
                    color[*node] = Color::Black;
                    stack.pop();
                }
            }
        }
    }
    true
}

/// Runs the fixpoint walk **with crash edges** and derives the
/// per-local-state analysis: immediate access sets per state, the
/// crash-free and crash-inclusive future footprints (backward closure
/// over the recorded successor edges), and per-process step-graph
/// acyclicity. See [`SystemAnalysis`].
pub fn analyze_system_states(
    mem: &Memory,
    programs: &[Box<dyn Program>],
    budget: AnalysisBudget,
) -> Result<SystemAnalysis, FootprintError> {
    let walk = walk_system(mem, programs, true, budget)?;
    let cells = mem.len();
    let decision = cells;
    let bits = cells + 1;
    let mut per_process = Vec::with_capacity(walk.pids.len());
    for pid in walk.pids.iter() {
        let n_states = pid.states.len();
        let mut infos: Vec<LocalStateInfo> = (0..n_states)
            .map(|s| {
                let (prog, decided) = &pid.states[s];
                let mut imm_accessed = CellSet::empty(bits);
                let mut imm_mutated = CellSet::empty(bits);
                if !*decided {
                    // The immediate sets union over every enabled choice
                    // — the step the scheduler actually takes is one of
                    // them, so the union is the sound per-process lump.
                    for &(_, site) in &pid.choice_sites[s] {
                        if let Some((cell, kind)) = site {
                            imm_accessed.insert(cell);
                            if kind.mutates() {
                                imm_mutated.insert(cell);
                            }
                        }
                    }
                    if pid.may_decide[s] {
                        // A deciding step reads and writes the decision
                        // pseudo-cell (the agreement check + the
                        // decided-value slot).
                        imm_accessed.insert(decision);
                        imm_mutated.insert(decision);
                    }
                }
                let site = match pid.choice_sites[s][..] {
                    [(_, site)] => site,
                    _ => None,
                };
                LocalStateInfo {
                    key: prog.state_key(),
                    decided: *decided,
                    site: if *decided { None } else { site },
                    may_decide: !*decided && pid.may_decide[s],
                    future_accessed: imm_accessed.clone(),
                    future_mutated: imm_mutated.clone(),
                    crash_future_accessed: imm_accessed.clone(),
                    crash_future_mutated: imm_mutated.clone(),
                    imm_accessed,
                    imm_mutated,
                }
            })
            .collect();
        // Backward closure to the (monotone, bounded) fixpoint: a
        // state's future covers its own step plus every successor's
        // future — over step edges only for the crash-free sets, over
        // step + crash edges for the crash-inclusive ones.
        let mut changed = true;
        while changed {
            changed = false;
            for s in (0..n_states).rev() {
                for succ in pid.step_succ[s].clone() {
                    let (acc, mutd, cacc, cmut) = {
                        let t = &infos[succ];
                        (
                            t.future_accessed.clone(),
                            t.future_mutated.clone(),
                            t.crash_future_accessed.clone(),
                            t.crash_future_mutated.clone(),
                        )
                    };
                    changed |= infos[s].future_accessed.union_with(&acc);
                    changed |= infos[s].future_mutated.union_with(&mutd);
                    changed |= infos[s].crash_future_accessed.union_with(&cacc);
                    changed |= infos[s].crash_future_mutated.union_with(&cmut);
                }
                if let Some(succ) = pid.crash_succ[s] {
                    let (cacc, cmut) = {
                        let t = &infos[succ];
                        (
                            t.crash_future_accessed.clone(),
                            t.crash_future_mutated.clone(),
                        )
                    };
                    changed |= infos[s].crash_future_accessed.union_with(&cacc);
                    changed |= infos[s].crash_future_mutated.union_with(&cmut);
                }
            }
        }
        per_process.push(ProcessStateMap {
            step_acyclic: step_graph_acyclic(&pid.step_succ),
            infos,
            index: pid.index.iter().map(|(k, &v)| (k.clone(), v)).collect(),
        });
    }
    Ok(SystemAnalysis {
        footprint: SystemFootprint {
            per_process: walk.pids.into_iter().map(|p| p.footprint).collect(),
            probes: walk.probes,
        },
        per_process,
        cells,
        serial: analysis_fixpoint_runs(),
    })
}

/// The process-global analysis cache behind [`system_analysis_cached`].
static ANALYSIS_CACHE: OnceLock<Mutex<HashMap<String, Arc<SystemAnalysis>>>> = OnceLock::new();

/// Returns the [`SystemAnalysis`] for `id`, computing it from `mem` and
/// `programs` only on the first call with that id. The id must uniquely
/// identify the system's construction (memory layout, program wiring and
/// instance size) — the catalog benchmarks use their row labels. The
/// cache lets `tables lint`, the explore engines' owned-cell validation
/// and the POR setup share one fixpoint run per catalog system; tests
/// assert the sharing via [`analysis_fixpoint_runs`] and the returned
/// [`SystemAnalysis::serial`].
pub fn system_analysis_cached(
    id: &str,
    mem: &Memory,
    programs: &[Box<dyn Program>],
    budget: AnalysisBudget,
) -> Result<Arc<SystemAnalysis>, FootprintError> {
    let cache = ANALYSIS_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("analysis cache lock");
    if let Some(hit) = map.get(id) {
        return Ok(hit.clone());
    }
    let analysis = Arc::new(analyze_system_states(mem, programs, budget)?);
    map.insert(id.to_string(), analysis.clone());
    Ok(analysis)
}

/// The static independence relation derived from a [`SystemFootprint`]:
/// steps of two distinct processes commute in **every** state when each
/// one's write footprint is disjoint from the other's access footprint —
/// neither step can change a cell the other touches, so both orders
/// produce identical memory and identical per-process behaviour. This is
/// the conflict relation partial-order reduction needs (see ROADMAP),
/// and the explore engines cross-validate it dynamically on request
/// ([`ExploreConfig::cross_validate_independence`](crate::ExploreConfig::cross_validate_independence)).
#[derive(Clone, Debug)]
pub struct StaticIndependence {
    accessed: Vec<BTreeSet<usize>>,
    mutated: Vec<BTreeSet<usize>>,
}

impl StaticIndependence {
    /// Derives the relation from analyzed footprints.
    pub fn from_footprint(fp: &SystemFootprint) -> Self {
        StaticIndependence {
            accessed: fp
                .per_process
                .iter()
                .map(|p| p.cells.keys().map(|a| a.index()).collect())
                .collect(),
            mutated: fp
                .per_process
                .iter()
                .map(|p| {
                    p.cells
                        .iter()
                        .filter(|(_, m)| m.mutates())
                        .map(|(a, _)| a.index())
                        .collect()
                })
                .collect(),
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.accessed.len()
    }

    /// Whether every step of `p` commutes with every step of `q`.
    pub fn are_independent(&self, p: Pid, q: Pid) -> bool {
        p != q
            && self.mutated[p].is_disjoint(&self.accessed[q])
            && self.mutated[q].is_disjoint(&self.accessed[p])
    }

    /// All independent pairs `(p, q)` with `p < q`, ascending.
    pub fn independent_pairs(&self) -> Vec<(Pid, Pid)> {
        let n = self.n();
        (0..n)
            .flat_map(|p| (p + 1..n).map(move |q| (p, q)))
            .filter(|&(p, q)| self.are_independent(p, q))
            .collect()
    }
}

/// The declaration linter's verdict on one system.
#[derive(Clone, Debug)]
pub struct LintReport {
    /// Soundness-relevant defects (under-declarations, owner-only
    /// violations). A system with errors must not be explored with the
    /// affected reductions.
    pub errors: Vec<String>,
    /// Lost-reduction / hygiene notes (over-declarations, inert owned
    /// cells).
    pub warnings: Vec<String>,
    /// `derived_owned[p]` — cells only process `p` ever touches:
    /// candidates for `SymmetrySpec::with_owned_cells`.
    pub derived_owned: Vec<Vec<Addr>>,
    /// The analyzed footprint the verdict is based on.
    pub footprint: SystemFootprint,
}

impl LintReport {
    /// Whether the audit found no errors (warnings allowed).
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Audits a system's hand-written access declarations against the
/// analyzed footprint:
///
/// * a [`referenced_cells`](Program::referenced_cells) declaration that
///   misses an analyzed access is an **error** (rule: `referenced_cells`
///   must cover every cell the process may access — the owned-cell
///   validation trusts it);
/// * a declaration listing cells the analysis never observes is a
///   **warning** (it costs reduction opportunities but breaks nothing);
/// * an owned cell (per `spec`) accessed by a non-owner from an acting
///   orbit is an **error** (rule: owned cells permute with their owners,
///   so a cross-reference would de-synchronize the quotient); on a
///   singleton orbit the same shape is only a **warning** (singletons
///   never move);
/// * cells touched by exactly one process are returned as derived
///   owned-cell candidates.
pub fn lint_system(
    mem: &Memory,
    programs: &[Box<dyn Program>],
    spec: Option<&SymmetrySpec>,
    budget: AnalysisBudget,
) -> Result<LintReport, FootprintError> {
    let analysis = analyze_system_states(mem, programs, budget)?;
    Ok(lint_with_analysis(&analysis, mem, programs, spec))
}

/// [`lint_system`] over an already-computed [`SystemAnalysis`] (e.g. a
/// [`system_analysis_cached`] hit), so the catalog audit and the explore
/// engines share one fixpoint run per system.
pub fn lint_with_analysis(
    analysis: &SystemAnalysis,
    mem: &Memory,
    programs: &[Box<dyn Program>],
    spec: Option<&SymmetrySpec>,
) -> LintReport {
    let footprint = analysis.footprint.clone();
    let mut errors = Vec::new();
    let mut warnings = Vec::new();

    for (pid, fp) in footprint.per_process.iter().enumerate() {
        if let Some(declared) = programs[pid].referenced_cells() {
            let declared: BTreeSet<Addr> = declared.into_iter().collect();
            let missing: Vec<String> = fp
                .cells
                .iter()
                .filter(|(a, _)| !declared.contains(a))
                .map(|(a, m)| format!("{a} ({})", m.label()))
                .collect();
            if !missing.is_empty() {
                errors.push(format!(
                    "p{pid} under-declares referenced_cells: analyzed accesses \
                     to {} are not declared (rule: referenced_cells must cover \
                     every cell the process may access)",
                    missing.join(", ")
                ));
            }
            let unused: Vec<String> = declared
                .iter()
                .filter(|a| !fp.cells.contains_key(a))
                .map(|a| a.to_string())
                .collect();
            if !unused.is_empty() {
                warnings.push(format!(
                    "p{pid} over-declares referenced_cells: {} never analyzed \
                     as accessed (lost reduction: wider declarations veto \
                     owned-cell candidates)",
                    unused.join(", ")
                ));
            }
        }
    }

    if let Some(spec) = spec {
        let moving: BTreeSet<Pid> = spec
            .acting_orbits()
            .flat_map(|pids| pids.iter().copied())
            .collect();
        for pid in 0..footprint.n() {
            for &cell in spec.owned(pid) {
                for (q, fq) in footprint.per_process.iter().enumerate() {
                    if q == pid || !fq.cells.contains_key(&cell) {
                        continue;
                    }
                    if moving.contains(&pid) {
                        errors.push(format!(
                            "cell {cell} is owned by p{pid} but accessed by \
                             p{q} ({}) (rule: owned cells permute with their \
                             owners, so no other process may reference them)",
                            fq.cells[&cell].label()
                        ));
                    } else {
                        warnings.push(format!(
                            "cell {cell} is owned by p{pid} (singleton orbit, \
                             inert) but accessed by p{q}; the declaration \
                             would become unsound if p{pid} joined an orbit"
                        ));
                    }
                }
                if !footprint.per_process[pid].cells.contains_key(&cell) {
                    warnings.push(format!(
                        "cell {cell} is owned by p{pid} but p{pid} never \
                         accesses it (inert ownership)"
                    ));
                }
            }
        }
    }

    let mut derived_owned: Vec<Vec<Addr>> = vec![Vec::new(); footprint.n()];
    for cell in 0..mem.len() {
        let addr = Addr(cell);
        let touchers: Vec<Pid> = footprint
            .per_process
            .iter()
            .enumerate()
            .filter(|(_, fp)| fp.cells.contains_key(&addr))
            .map(|(p, _)| p)
            .collect();
        if let [only] = touchers[..] {
            derived_owned[only].push(addr);
        }
    }

    LintReport {
        errors,
        warnings,
        derived_owned,
        footprint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Writes its input to `mine`, reads `shared`, decides it.
    #[derive(Clone, Debug)]
    struct WriteThenRead {
        mine: Addr,
        shared: Addr,
        input: Value,
        pc: u8,
    }

    impl Program for WriteThenRead {
        fn step(&mut self, mem: &mut dyn MemOps) -> Step {
            match self.pc {
                0 => {
                    mem.write_register(self.mine, self.input.clone());
                    self.pc = 1;
                    Step::Running
                }
                _ => Step::Decided(mem.read_register(self.shared)),
            }
        }
        fn on_crash(&mut self) {
            self.pc = 0;
        }
        fn state_key(&self) -> Value {
            Value::Int(i64::from(self.pc))
        }
        fn boxed_clone(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
        fn referenced_cells(&self) -> Option<Vec<Addr>> {
            Some(vec![self.mine, self.shared])
        }
    }

    fn two_writer_system() -> (Memory, Vec<Box<dyn Program>>) {
        let mut mem = Memory::new();
        let a = mem.alloc_register(Value::Bottom);
        let b = mem.alloc_register(Value::Bottom);
        let shared = mem.alloc_register(Value::Int(7));
        let programs: Vec<Box<dyn Program>> = vec![
            Box::new(WriteThenRead {
                mine: a,
                shared,
                input: Value::Int(0),
                pc: 0,
            }),
            Box::new(WriteThenRead {
                mine: b,
                shared,
                input: Value::Int(1),
                pc: 0,
            }),
        ];
        (mem, programs)
    }

    #[test]
    fn footprints_record_modes_per_cell() {
        let (mem, programs) = two_writer_system();
        let fp = analyze_system(&mem, &programs, true, AnalysisBudget::default())
            .expect("bounded system analyzes");
        assert_eq!(fp.n(), 2);
        assert_eq!(fp.per_process[0].accessed(), vec![Addr(0), Addr(2)]);
        assert_eq!(fp.per_process[1].accessed(), vec![Addr(1), Addr(2)]);
        assert_eq!(fp.per_process[0].mutated(), vec![Addr(0)]);
        let modes = fp.per_process[0].cells[&Addr(0)];
        assert!(modes.write && !modes.read && !modes.rmw);
        assert_eq!(fp.per_process[0].cells[&Addr(2)].label(), "r");
    }

    #[test]
    fn independence_needs_disjoint_write_and_access_sets() {
        let (mem, programs) = two_writer_system();
        let fp = analyze_system(&mem, &programs, true, AnalysisBudget::default()).unwrap();
        let indep = StaticIndependence::from_footprint(&fp);
        // Both only *read* the shared cell and write disjoint cells.
        assert!(indep.are_independent(0, 1));
        assert!(!indep.are_independent(0, 0));
        assert_eq!(indep.independent_pairs(), vec![(0, 1)]);
    }

    #[test]
    fn writers_of_a_read_cell_are_dependent() {
        let mut mem = Memory::new();
        let shared = mem.alloc_register(Value::Bottom);
        let mine = mem.alloc_register(Value::Bottom);
        let programs: Vec<Box<dyn Program>> = vec![
            // p0 writes the cell p1 reads.
            Box::new(WriteThenRead {
                mine: shared,
                shared: mine,
                input: Value::Int(3),
                pc: 0,
            }),
            Box::new(WriteThenRead {
                mine,
                shared,
                input: Value::Int(4),
                pc: 0,
            }),
        ];
        let fp = analyze_system(&mem, &programs, true, AnalysisBudget::default()).unwrap();
        let indep = StaticIndependence::from_footprint(&fp);
        assert!(!indep.are_independent(0, 1));
        assert!(indep.independent_pairs().is_empty());
    }

    #[test]
    fn read_branching_covers_values_other_processes_write() {
        /// Reads `watch`; if it ever sees `Int(1)` it writes `tattle`.
        #[derive(Clone, Debug)]
        struct Watcher {
            watch: Addr,
            tattle: Addr,
            pc: u8,
        }
        impl Program for Watcher {
            fn step(&mut self, mem: &mut dyn MemOps) -> Step {
                match self.pc {
                    0 => {
                        if mem.read_register(self.watch) == Value::Int(1) {
                            self.pc = 1;
                        } else {
                            self.pc = 2;
                        }
                        Step::Running
                    }
                    1 => {
                        mem.write_register(self.tattle, Value::Unit);
                        self.pc = 2;
                        Step::Running
                    }
                    _ => Step::Decided(Value::Unit),
                }
            }
            fn on_crash(&mut self) {
                self.pc = 0;
            }
            fn state_key(&self) -> Value {
                Value::Int(i64::from(self.pc))
            }
            fn boxed_clone(&self) -> Box<dyn Program> {
                Box::new(self.clone())
            }
        }
        let mut mem = Memory::new();
        let watch = mem.alloc_register(Value::Int(0));
        let tattle = mem.alloc_register(Value::Bottom);
        let programs: Vec<Box<dyn Program>> = vec![
            Box::new(Watcher {
                watch,
                tattle,
                pc: 0,
            }),
            // p1 writes Int(1) into `watch` — only then can p0 reach its
            // `tattle` write. The fixpoint must re-probe p0's read site.
            Box::new(WriteThenRead {
                mine: watch,
                shared: tattle,
                input: Value::Int(1),
                pc: 0,
            }),
        ];
        let fp = analyze_system(&mem, &programs, true, AnalysisBudget::default()).unwrap();
        assert!(
            fp.per_process[0].cells.contains_key(&tattle),
            "the tattle write is reachable only through a value p1 wrote: {:?}",
            fp.per_process[0]
        );
    }

    #[test]
    fn rmw_transitions_grow_object_domains() {
        use rc_spec::types::TestAndSet;
        use std::sync::Arc;

        /// Applies `tas`, decides whether it won.
        #[derive(Clone, Debug)]
        struct TasOnce {
            obj: Addr,
            pc: u8,
        }
        impl Program for TasOnce {
            fn step(&mut self, mem: &mut dyn MemOps) -> Step {
                match self.pc {
                    0 => {
                        let won = mem.apply(self.obj, &Operation::nullary("tas"));
                        self.pc = if won == Value::Bool(false) { 1 } else { 2 };
                        Step::Running
                    }
                    pc => Step::Decided(Value::Bool(pc == 1)),
                }
            }
            fn on_crash(&mut self) {
                self.pc = 0;
            }
            fn state_key(&self) -> Value {
                Value::Int(i64::from(self.pc))
            }
            fn boxed_clone(&self) -> Box<dyn Program> {
                Box::new(self.clone())
            }
        }
        let mut mem = Memory::new();
        let obj = mem.alloc_object(Arc::new(TestAndSet::new()), Value::Bool(false));
        let programs: Vec<Box<dyn Program>> = vec![
            Box::new(TasOnce { obj, pc: 0 }),
            Box::new(TasOnce { obj, pc: 0 }),
        ];
        let fp = analyze_system(&mem, &programs, true, AnalysisBudget::default()).unwrap();
        for p in 0..2 {
            let modes = fp.per_process[p].cells[&obj];
            assert!(modes.rmw && modes.mutates());
            // Both the winning and losing local branches are reached —
            // pc 1 requires seeing `false`, pc 2 requires the `true` the
            // first tas leaves behind (domain growth). Memoized states:
            // (pc 0/1/2, running) plus (pc 1/2, decided).
            assert_eq!(fp.per_process[p].local_states, 5);
        }
        let indep = StaticIndependence::from_footprint(&fp);
        assert!(!indep.are_independent(0, 1), "both RMW the same object");
    }

    #[test]
    fn unbounded_state_exhausts_the_budget() {
        /// `state_key` grows forever: the memoized walk cannot converge.
        #[derive(Clone, Debug)]
        struct Counter {
            reg: Addr,
            count: i64,
        }
        impl Program for Counter {
            fn step(&mut self, mem: &mut dyn MemOps) -> Step {
                self.count += 1;
                mem.write_register(self.reg, Value::Int(self.count));
                Step::Running
            }
            fn on_crash(&mut self) {}
            fn state_key(&self) -> Value {
                Value::Int(self.count)
            }
            fn boxed_clone(&self) -> Box<dyn Program> {
                Box::new(self.clone())
            }
        }
        let mut mem = Memory::new();
        let reg = mem.alloc_register(Value::Bottom);
        let programs: Vec<Box<dyn Program>> = vec![Box::new(Counter { reg, count: 0 })];
        let budget = AnalysisBudget {
            max_local_states: 64,
            max_probes: 1 << 12,
        };
        match analyze_system(&mem, &programs, true, budget) {
            Err(FootprintError::BudgetExceeded { pid: 0, .. }) => {}
            other => panic!("unbounded walk must exhaust the budget, got {other:?}"),
        }
    }

    #[test]
    fn double_access_steps_violate_the_contract() {
        #[derive(Clone, Debug)]
        struct DoubleReader {
            a: Addr,
            b: Addr,
        }
        impl Program for DoubleReader {
            fn step(&mut self, mem: &mut dyn MemOps) -> Step {
                let x = mem.read_register(self.a);
                let _y = mem.read_register(self.b);
                Step::Decided(x)
            }
            fn on_crash(&mut self) {}
            fn state_key(&self) -> Value {
                Value::Unit
            }
            fn boxed_clone(&self) -> Box<dyn Program> {
                Box::new(self.clone())
            }
        }
        let mut mem = Memory::new();
        let a = mem.alloc_register(Value::Bottom);
        let b = mem.alloc_register(Value::Bottom);
        let programs: Vec<Box<dyn Program>> = vec![Box::new(DoubleReader { a, b })];
        match analyze_system(&mem, &programs, true, AnalysisBudget::default()) {
            Err(FootprintError::MultipleAccesses { pid: 0, .. }) => {}
            other => panic!("double access must be detected, got {other:?}"),
        }
    }

    #[test]
    fn lint_flags_under_declaration_as_error() {
        /// Declares only `mine`, but also reads `shared`.
        #[derive(Clone, Debug)]
        struct UnderDeclared {
            mine: Addr,
            shared: Addr,
            pc: u8,
        }
        impl Program for UnderDeclared {
            fn step(&mut self, mem: &mut dyn MemOps) -> Step {
                match self.pc {
                    0 => {
                        mem.write_register(self.mine, Value::Int(1));
                        self.pc = 1;
                        Step::Running
                    }
                    _ => Step::Decided(mem.read_register(self.shared)),
                }
            }
            fn on_crash(&mut self) {
                self.pc = 0;
            }
            fn state_key(&self) -> Value {
                Value::Int(i64::from(self.pc))
            }
            fn boxed_clone(&self) -> Box<dyn Program> {
                Box::new(self.clone())
            }
            fn referenced_cells(&self) -> Option<Vec<Addr>> {
                Some(vec![self.mine]) // deliberately misses `shared`
            }
        }
        let mut mem = Memory::new();
        let mine = mem.alloc_register(Value::Bottom);
        let shared = mem.alloc_register(Value::Bottom);
        let programs: Vec<Box<dyn Program>> = vec![Box::new(UnderDeclared {
            mine,
            shared,
            pc: 0,
        })];
        let report =
            lint_system(&mem, &programs, None, AnalysisBudget::default()).expect("analyzable");
        assert!(!report.is_clean());
        assert!(
            report.errors[0].contains("p0") && report.errors[0].contains("under-declares"),
            "error must name the pid and rule: {:?}",
            report.errors
        );
    }

    #[test]
    fn lint_reports_over_declaration_and_derived_owned() {
        let (mem, programs) = two_writer_system();
        let report =
            lint_system(&mem, &programs, None, AnalysisBudget::default()).expect("analyzable");
        assert!(report.is_clean());
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);
        // Each writer is the sole toucher of its own register; the
        // shared register is read by both.
        assert_eq!(report.derived_owned[0], vec![Addr(0)]);
        assert_eq!(report.derived_owned[1], vec![Addr(1)]);
    }

    #[test]
    fn lint_flags_cross_referenced_owned_cells() {
        let mut mem = Memory::new();
        let a = mem.alloc_register(Value::Bottom);
        let b = mem.alloc_register(Value::Bottom);
        let shared = mem.alloc_register(Value::Bottom);
        let programs: Vec<Box<dyn Program>> = vec![
            Box::new(WriteThenRead {
                mine: a,
                shared,
                input: Value::Int(0),
                pc: 0,
            }),
            // p1's "private" cell is... p0's cell a? No: p1 reads a.
            Box::new(WriteThenRead {
                mine: b,
                shared: a,
                input: Value::Int(0),
                pc: 0,
            }),
        ];
        let spec = SymmetrySpec::full(2)
            .with_owned_cells(0, vec![a])
            .with_owned_cells(1, vec![b]);
        let report = lint_system(&mem, &programs, Some(&spec), AnalysisBudget::default()).unwrap();
        assert!(!report.is_clean());
        assert!(
            report.errors[0].contains(&format!("{a}"))
                && report.errors[0].contains("owned by p0")
                && report.errors[0].contains("accessed by p1"),
            "error must name cell, owner and accessor: {:?}",
            report.errors
        );
        // On singleton orbits the same shape is only a warning.
        let inert = SymmetrySpec::trivial(2)
            .with_owned_cells(0, vec![a])
            .with_owned_cells(1, vec![b]);
        let report = lint_system(&mem, &programs, Some(&inert), AnalysisBudget::default()).unwrap();
        assert!(report.is_clean());
        assert!(!report.warnings.is_empty());
    }

    #[test]
    fn per_state_futures_shrink_along_steps() {
        let (mem, programs) = two_writer_system();
        let analysis =
            analyze_system_states(&mem, &programs, AnalysisBudget::default()).expect("analyzable");
        assert_eq!(analysis.cells, 3);
        let d = analysis.decision_cell();
        assert!(analysis.step_graphs_acyclic());
        let p0 = &analysis.per_process[0];
        // pc 0: writes `mine` (cell 0) now; the future also reads
        // `shared` (cell 2) and decides (the pseudo-cell).
        let start = p0.lookup(&Value::Int(0), false).expect("pc 0 analyzed");
        assert_eq!(start.site, Some((0, AccessKind::Write)));
        assert!(!start.may_decide);
        assert!(start.imm_mutated.contains(0) && !start.imm_mutated.contains(2));
        assert!(!start.imm_accessed.contains(d));
        assert!(start.future_accessed.contains(2) && start.future_accessed.contains(d));
        // pc 1: reads `shared` and decides; cell 0 is out of its
        // crash-free future but back in the crash-inclusive one (the
        // restart re-runs the write).
        let poised = p0.lookup(&Value::Int(1), false).expect("pc 1 analyzed");
        assert_eq!(poised.site, Some((2, AccessKind::Read)));
        assert!(poised.may_decide);
        assert!(poised.imm_accessed.contains(d) && poised.imm_mutated.contains(d));
        assert!(!poised.future_accessed.contains(0));
        assert!(poised.crash_future_accessed.contains(0));
        assert!(poised
            .future_accessed
            .is_subset(&poised.crash_future_accessed));
        // Decided states step no more: empty immediate and future sets.
        let done = p0.lookup(&Value::Int(1), true).expect("decided analyzed");
        assert!(done.imm_accessed.is_empty() && done.future_accessed.is_empty());
    }

    #[test]
    fn spinning_reader_has_a_cyclic_step_graph() {
        /// Re-reads `watch` until it sees a non-Bottom value: pc 0 has a
        /// step self-loop, so the local step graph is cyclic.
        #[derive(Clone, Debug)]
        struct Spinner {
            watch: Addr,
            pc: u8,
        }
        impl Program for Spinner {
            fn step(&mut self, mem: &mut dyn MemOps) -> Step {
                match self.pc {
                    0 => {
                        if mem.read_register(self.watch) != Value::Bottom {
                            self.pc = 1;
                        }
                        Step::Running
                    }
                    _ => Step::Decided(Value::Unit),
                }
            }
            fn on_crash(&mut self) {
                self.pc = 0;
            }
            fn state_key(&self) -> Value {
                Value::Int(i64::from(self.pc))
            }
            fn boxed_clone(&self) -> Box<dyn Program> {
                Box::new(self.clone())
            }
        }
        let mut mem = Memory::new();
        let watch = mem.alloc_register(Value::Bottom);
        let programs: Vec<Box<dyn Program>> = vec![
            Box::new(Spinner { watch, pc: 0 }),
            Box::new(WriteThenRead {
                mine: watch,
                shared: watch,
                input: Value::Int(1),
                pc: 0,
            }),
        ];
        let analysis = analyze_system_states(&mem, &programs, AnalysisBudget::default()).unwrap();
        assert!(!analysis.per_process[0].step_acyclic, "pc-0 self-loop");
        assert!(analysis.per_process[1].step_acyclic);
        assert!(!analysis.step_graphs_acyclic());
    }

    #[test]
    fn analysis_cache_runs_the_fixpoint_once_per_id() {
        let (mem, programs) = two_writer_system();
        let id = "footprint-test::cache-once";
        let first = system_analysis_cached(id, &mem, &programs, AnalysisBudget::default())
            .expect("analyzable");
        let runs_after_first = analysis_fixpoint_runs();
        let second = system_analysis_cached(id, &mem, &programs, AnalysisBudget::default())
            .expect("analyzable");
        assert!(Arc::ptr_eq(&first, &second), "second call must be a hit");
        assert_eq!(first.serial, second.serial);
        // Other tests run fixpoints concurrently, so assert through the
        // Arc identity + serial stamp rather than the raw global delta;
        // the serial recorded in the hit predates `runs_after_first`.
        assert!(second.serial <= runs_after_first);
    }
}
