//! The simulation loop.

use crate::memory::Memory;
use crate::program::{Program, Step};
use crate::sched::{Action, SchedContext, Scheduler};
use crate::trace::{Trace, TraceEvent};
use rc_spec::Value;

/// Options for [`run`].
#[derive(Clone, Copy, Debug)]
pub struct RunOptions {
    /// Safety bound on the total number of scheduled actions (steps +
    /// crashes). A recoverable wait-free algorithm with a finite crash
    /// budget always terminates well below any sensible bound; hitting the
    /// bound indicates a bug and is reported via
    /// [`Execution::hit_step_limit`].
    pub max_actions: usize,
    /// Whether to record a [`Trace`] (on by default; turn off for
    /// benchmarks).
    pub record_trace: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            max_actions: 1_000_000,
            record_trace: true,
        }
    }
}

/// The observable result of a simulated execution.
#[derive(Clone, Debug)]
pub struct Execution {
    /// `outputs[p]` — every output produced by process `p`, across all of
    /// its runs (a process crashes after deciding and re-runs may decide
    /// again; agreement quantifies over *all* of these, Section 1).
    pub outputs: Vec<Vec<Value>>,
    /// Total process steps executed.
    pub steps: usize,
    /// Total crash events injected.
    pub crashes: usize,
    /// Whether every process's final run decided.
    pub all_decided: bool,
    /// Whether the [`RunOptions::max_actions`] safety bound was hit.
    pub hit_step_limit: bool,
    /// The schedule that was executed (empty if trace recording was off).
    pub trace: Trace,
}

impl Execution {
    /// All outputs produced by any run of any process, flattened.
    pub fn all_outputs(&self) -> Vec<Value> {
        self.outputs.iter().flatten().cloned().collect()
    }
}

/// Runs `programs` against `mem` under `sched` until the scheduler ends
/// the execution or the safety bound trips.
///
/// Crash semantics (the paper's model, Section 1): a crash calls
/// [`Program::on_crash`] — volatile state is reset, shared memory (`mem`)
/// is untouched — and the process subsequently re-executes from the
/// beginning. Crashing a process whose current run had already decided
/// clears its decided flag, forcing a re-run whose output is *also*
/// recorded (agreement must cover it).
pub fn run(
    mem: &mut Memory,
    programs: &mut [Box<dyn Program>],
    sched: &mut dyn Scheduler,
    options: RunOptions,
) -> Execution {
    let n = programs.len();
    let mut decided = vec![false; n];
    let mut outputs: Vec<Vec<Value>> = vec![Vec::new(); n];
    let mut trace = Trace::new();
    let mut steps = 0usize;
    let mut crashes = 0usize;
    let mut actions = 0usize;
    let mut hit_step_limit = false;

    loop {
        if actions >= options.max_actions {
            hit_step_limit = true;
            break;
        }
        let ctx = SchedContext {
            n,
            decided: &decided,
            steps_taken: steps,
            crashes_injected: crashes,
        };
        let Some(action) = sched.next_action(&ctx) else {
            break;
        };
        actions += 1;
        match action {
            Action::Step(p) | Action::Branch(p, _) => {
                assert!(p < n, "scheduler stepped unknown process {p}");
                if decided[p] {
                    // A decided run has terminated; stepping it is a no-op
                    // (schedulers normally never do this).
                    continue;
                }
                steps += 1;
                if options.record_trace {
                    trace.push(TraceEvent::Stepped(p));
                }
                let step = match action {
                    Action::Branch(_, choice) => programs[p].step_choice(mem, choice),
                    _ => programs[p].step(mem),
                };
                if let Step::Decided(v) = step {
                    decided[p] = true;
                    outputs[p].push(v.clone());
                    if options.record_trace {
                        trace.push(TraceEvent::Decided(p, v));
                    }
                }
            }
            Action::Crash(p) => {
                assert!(p < n, "scheduler crashed unknown process {p}");
                crashes += 1;
                programs[p].on_crash();
                decided[p] = false;
                if options.record_trace {
                    trace.push(TraceEvent::Crashed(p));
                }
            }
            Action::CrashAll => {
                crashes += 1;
                for (p, prog) in programs.iter_mut().enumerate() {
                    prog.on_crash();
                    decided[p] = false;
                }
                if options.record_trace {
                    trace.push(TraceEvent::CrashedAll);
                }
            }
        }
    }

    Execution {
        outputs,
        steps,
        crashes,
        all_decided: decided.iter().all(|d| *d),
        hit_step_limit,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{Addr, MemOps};
    use crate::sched::{RoundRobin, ScriptedScheduler};

    /// Writes its input, reads it back, decides what it read.
    #[derive(Clone, Debug)]
    struct WriteReadDecide {
        addr: Addr,
        input: Value,
        pc: u8,
    }

    impl Program for WriteReadDecide {
        fn step(&mut self, mem: &mut dyn MemOps) -> Step {
            match self.pc {
                0 => {
                    mem.write_register(self.addr, self.input.clone());
                    self.pc = 1;
                    Step::Running
                }
                _ => Step::Decided(mem.read_register(self.addr)),
            }
        }
        fn on_crash(&mut self) {
            self.pc = 0;
        }
        fn state_key(&self) -> Value {
            Value::Int(i64::from(self.pc))
        }
        fn boxed_clone(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
    }

    fn system(n: usize) -> (Memory, Vec<Box<dyn Program>>) {
        let mut mem = Memory::new();
        let addr = mem.alloc_register(Value::Bottom);
        let programs: Vec<Box<dyn Program>> = (0..n)
            .map(|i| {
                Box::new(WriteReadDecide {
                    addr,
                    input: Value::Int(i as i64),
                    pc: 0,
                }) as Box<dyn Program>
            })
            .collect();
        (mem, programs)
    }

    #[test]
    fn round_robin_run_decides_everyone() {
        let (mut mem, mut programs) = system(3);
        let exec = run(
            &mut mem,
            &mut programs,
            &mut RoundRobin::new(),
            RunOptions::default(),
        );
        assert!(exec.all_decided);
        assert!(!exec.hit_step_limit);
        assert_eq!(exec.steps, 6);
        assert_eq!(exec.outputs.iter().map(Vec::len).sum::<usize>(), 3);
    }

    #[test]
    fn crash_forces_rerun_and_both_outputs_recorded() {
        let (mut mem, mut programs) = system(1);
        use crate::sched::Action::*;
        let mut sched = ScriptedScheduler::then_finish([
            Step(0),
            Step(0), // decides
            Crash(0),
            // then_finish re-runs p0 to a second decision
        ]);
        let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
        assert_eq!(exec.outputs[0].len(), 2, "one output per run");
        assert_eq!(exec.outputs[0][0], exec.outputs[0][1]);
        assert_eq!(exec.crashes, 1);
        assert_eq!(exec.all_outputs().len(), 2);
    }

    #[test]
    fn crash_all_resets_every_process() {
        let (mut mem, mut programs) = system(2);
        use crate::sched::Action::*;
        let mut sched = ScriptedScheduler::then_finish([Step(0), Step(1), CrashAll]);
        let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
        assert!(exec.all_decided);
        assert_eq!(exec.crashes, 1);
        assert_eq!(exec.trace.crash_count(), 1);
    }

    #[test]
    fn step_limit_reported() {
        let (mut mem, mut programs) = system(2);
        // A scheduler that loops forever crashing p0.
        struct CrashLoop;
        impl Scheduler for CrashLoop {
            fn next_action(&mut self, _: &SchedContext<'_>) -> Option<Action> {
                Some(Action::Crash(0))
            }
        }
        let exec = run(
            &mut mem,
            &mut programs,
            &mut CrashLoop,
            RunOptions {
                max_actions: 100,
                record_trace: false,
            },
        );
        assert!(exec.hit_step_limit);
        assert!(!exec.all_decided);
        assert!(exec.trace.is_empty());
    }
}
