//! Bounded-exhaustive model checking of crash–recovery executions.
//!
//! [`explore`] enumerates, by depth-first search, **every** execution of a
//! system of [`Program`]s under the paper's adversary, up to a crash
//! budget: at each point the adversary may step any undecided process, or
//! (budget permitting) crash any process / all processes. Reached system
//! states — shared memory contents, every process's volatile state, the
//! decided flags, the remaining budget — are memoized *structurally*
//! (full-fidelity keys, no hashing shortcuts), so the search visits each
//! state once and the verdict is exact.
//!
//! The checked properties are the safety half of recoverable consensus
//! (Section 1):
//!
//! * **agreement** — no two outputs (across processes *and* across re-runs
//!   of one process) differ;
//! * **validity** — every output is one of the declared inputs.
//!
//! Termination (recoverable wait-freedom) holds by construction for the
//! paper's loop-free algorithms and is additionally guarded by a depth
//! bound.

use crate::memory::Memory;
use crate::program::{Program, Step};
use crate::sched::Action;
use rc_spec::Value;
use std::collections::HashSet;

/// Configuration for [`explore`].
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Maximum number of crash events along any one execution.
    pub crash_budget: usize,
    /// If `true`, crashes are simultaneous (`CrashAll`); otherwise
    /// individual (`Crash(p)`).
    pub simultaneous: bool,
    /// Whether the adversary may crash a process whose current run already
    /// decided (forcing re-runs). Default `false` keeps the state space
    /// small; the randomized tester covers post-decide crashes at scale.
    pub crash_after_decide: bool,
    /// The declared inputs, for the validity check. `None` skips validity.
    pub inputs: Option<Vec<Value>>,
    /// Safety cap on distinct states (the search reports truncation).
    pub max_states: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            crash_budget: 1,
            simultaneous: false,
            crash_after_decide: false,
            inputs: None,
            max_states: 5_000_000,
        }
    }
}

/// The result of an exhaustive exploration.
#[derive(Clone, Debug)]
pub enum ExploreOutcome {
    /// Every reachable execution satisfies agreement (and validity, if
    /// inputs were declared).
    Verified {
        /// Number of distinct system states visited.
        states: usize,
        /// Number of complete executions (leaves) enumerated, counting
        /// each memoized suffix once.
        leaves: usize,
    },
    /// A safety violation was found; the action sequence reproduces it.
    Violation {
        /// What went wrong.
        kind: ViolationKind,
        /// The schedule that exhibits the violation, from the initial
        /// state.
        schedule: Vec<Action>,
        /// The conflicting outputs observed on that schedule.
        outputs: Vec<Value>,
    },
    /// The state cap was hit before the search completed.
    Truncated {
        /// Number of distinct system states visited before giving up.
        states: usize,
    },
}

impl ExploreOutcome {
    /// Whether the outcome proves safety over the explored space.
    pub fn is_verified(&self) -> bool {
        matches!(self, ExploreOutcome::Verified { .. })
    }

    /// Whether a violation was found.
    pub fn is_violation(&self) -> bool {
        matches!(self, ExploreOutcome::Violation { .. })
    }
}

/// Which safety property failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// Two outputs differ.
    Agreement,
    /// An output is not among the declared inputs.
    Validity,
}

/// A factory producing the initial system; the model checker clones its
/// output to branch the search.
pub type SystemFactory<'a> = dyn Fn() -> (Memory, Vec<Box<dyn Program>>) + 'a;

/// Full-fidelity memoization key for a system state: shared-memory
/// contents, each process's volatile state, the decided flags, crashes
/// used so far, and the first decided value (if any).
type StateKey = (Vec<Value>, Vec<Value>, Vec<bool>, usize, Option<Value>);

struct Search<'a> {
    config: &'a ExploreConfig,
    visited: HashSet<StateKey>,
    schedule: Vec<Action>,
    leaves: usize,
    truncated: bool,
    violation: Option<(ViolationKind, Vec<Action>, Vec<Value>)>,
}

#[derive(Clone)]
struct Node {
    mem: Memory,
    programs: Vec<Box<dyn Program>>,
    decided: Vec<bool>,
    crashes_used: usize,
    decided_value: Option<Value>,
}

impl Node {
    fn key(&self) -> StateKey {
        (
            self.mem.state_key(),
            self.programs.iter().map(|p| p.state_key()).collect(),
            self.decided.clone(),
            self.crashes_used,
            self.decided_value.clone(),
        )
    }
}

impl Search<'_> {
    fn dfs(&mut self, node: Node) {
        if self.violation.is_some() || self.truncated {
            return;
        }
        if !self.visited.insert(node.key()) {
            return;
        }
        if self.visited.len() > self.config.max_states {
            self.truncated = true;
            return;
        }

        let n = node.programs.len();
        let mut any_action = false;

        // Step actions for undecided processes.
        for p in 0..n {
            if node.decided[p] {
                continue;
            }
            any_action = true;
            let mut next = node.clone();
            self.schedule.push(Action::Step(p));
            let step = next.programs[p].step(&mut next.mem);
            if let Step::Decided(v) = step {
                next.decided[p] = true;
                if let Some(kind) = self.check_output(&node.decided_value, &v) {
                    self.violation = Some((
                        kind,
                        self.schedule.clone(),
                        match &node.decided_value {
                            Some(d) => vec![d.clone(), v.clone()],
                            None => vec![v.clone()],
                        },
                    ));
                    self.schedule.pop();
                    return;
                }
                next.decided_value = Some(v);
            }
            self.dfs(next);
            self.schedule.pop();
            if self.violation.is_some() || self.truncated {
                return;
            }
        }

        // Crash actions, budget permitting.
        if node.crashes_used < self.config.crash_budget {
            if self.config.simultaneous {
                any_action = true;
                let mut next = node.clone();
                self.schedule.push(Action::CrashAll);
                for p in 0..n {
                    next.programs[p].on_crash();
                    next.decided[p] = false;
                }
                next.crashes_used += 1;
                self.dfs(next);
                self.schedule.pop();
                if self.violation.is_some() || self.truncated {
                    return;
                }
            } else {
                for p in 0..n {
                    if node.decided[p] && !self.config.crash_after_decide {
                        continue;
                    }
                    any_action = true;
                    let mut next = node.clone();
                    self.schedule.push(Action::Crash(p));
                    next.programs[p].on_crash();
                    next.decided[p] = false;
                    next.crashes_used += 1;
                    self.dfs(next);
                    self.schedule.pop();
                    if self.violation.is_some() || self.truncated {
                        return;
                    }
                }
            }
        }

        if !any_action {
            self.leaves += 1;
        }
    }

    fn check_output(&self, decided: &Option<Value>, v: &Value) -> Option<ViolationKind> {
        if let Some(d) = decided {
            if d != v {
                return Some(ViolationKind::Agreement);
            }
        }
        if let Some(inputs) = &self.config.inputs {
            if !inputs.contains(v) {
                return Some(ViolationKind::Validity);
            }
        }
        None
    }
}

/// Exhaustively explores every execution of the system produced by
/// `factory` under `config`'s adversary.
pub fn explore(factory: &SystemFactory<'_>, config: &ExploreConfig) -> ExploreOutcome {
    let (mem, programs) = factory();
    let n = programs.len();
    let mut search = Search {
        config,
        visited: HashSet::new(),
        schedule: Vec::new(),
        leaves: 0,
        truncated: false,
        violation: None,
    };
    search.dfs(Node {
        mem,
        programs,
        decided: vec![false; n],
        crashes_used: 0,
        decided_value: None,
    });
    if let Some((kind, schedule, outputs)) = search.violation {
        ExploreOutcome::Violation {
            kind,
            schedule,
            outputs,
        }
    } else if search.truncated {
        ExploreOutcome::Truncated {
            states: search.visited.len(),
        }
    } else {
        ExploreOutcome::Verified {
            states: search.visited.len(),
            leaves: search.leaves,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{Addr, MemOps};

    /// A correct 1-process program: decides its input.
    #[derive(Clone, Debug)]
    struct DecideInput {
        input: Value,
    }
    impl Program for DecideInput {
        fn step(&mut self, _: &mut dyn MemOps) -> Step {
            Step::Decided(self.input.clone())
        }
        fn on_crash(&mut self) {}
        fn state_key(&self) -> Value {
            Value::Unit
        }
        fn boxed_clone(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
    }

    /// A deliberately broken 2-process "consensus": each decides its own
    /// input — agreement fails whenever inputs differ.
    #[derive(Clone, Debug)]
    struct DecideOwn {
        input: Value,
    }
    impl Program for DecideOwn {
        fn step(&mut self, _: &mut dyn MemOps) -> Step {
            Step::Decided(self.input.clone())
        }
        fn on_crash(&mut self) {}
        fn state_key(&self) -> Value {
            Value::Unit
        }
        fn boxed_clone(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
    }

    /// Writes 0 on the first run, and after a crash decides 1 — violating
    /// agreement across re-runs of the *same* process when combined with
    /// the first run's decision. Used to check post-decide crash handling.
    #[derive(Clone, Debug)]
    struct ForgetfulDecider {
        addr: Addr,
        pc: u8,
    }
    impl Program for ForgetfulDecider {
        fn step(&mut self, mem: &mut dyn MemOps) -> Step {
            match self.pc {
                0 => {
                    // First run: decide 0 and mark the memory.
                    let seen = mem.read_register(self.addr);
                    self.pc = 1;
                    if seen.is_bottom() {
                        Step::Running
                    } else {
                        // Recovery run: decide differently. BUG by design.
                        Step::Decided(Value::Int(1))
                    }
                }
                _ => {
                    mem.write_register(self.addr, Value::Int(0));
                    Step::Decided(Value::Int(0))
                }
            }
        }
        fn on_crash(&mut self) {
            self.pc = 0;
        }
        fn state_key(&self) -> Value {
            Value::Int(i64::from(self.pc))
        }
        fn boxed_clone(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn verifies_trivial_agreeing_system() {
        let outcome = explore(
            &|| {
                let mem = Memory::new();
                let programs: Vec<Box<dyn Program>> = vec![
                    Box::new(DecideInput {
                        input: Value::Int(3),
                    }),
                    Box::new(DecideInput {
                        input: Value::Int(3),
                    }),
                ];
                (mem, programs)
            },
            &ExploreConfig {
                crash_budget: 2,
                inputs: Some(vec![Value::Int(3)]),
                ..ExploreConfig::default()
            },
        );
        assert!(outcome.is_verified(), "{outcome:?}");
    }

    #[test]
    fn finds_agreement_violation() {
        let outcome = explore(
            &|| {
                let mem = Memory::new();
                let programs: Vec<Box<dyn Program>> = vec![
                    Box::new(DecideOwn {
                        input: Value::Int(0),
                    }),
                    Box::new(DecideOwn {
                        input: Value::Int(1),
                    }),
                ];
                (mem, programs)
            },
            &ExploreConfig::default(),
        );
        match outcome {
            ExploreOutcome::Violation {
                kind,
                schedule,
                outputs,
                ..
            } => {
                assert_eq!(kind, ViolationKind::Agreement);
                assert_eq!(schedule.len(), 2, "two steps suffice");
                assert_eq!(outputs.len(), 2);
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn finds_validity_violation() {
        let outcome = explore(
            &|| {
                let mem = Memory::new();
                let programs: Vec<Box<dyn Program>> = vec![Box::new(DecideInput {
                    input: Value::Int(9),
                })];
                (mem, programs)
            },
            &ExploreConfig {
                inputs: Some(vec![Value::Int(0), Value::Int(1)]),
                ..ExploreConfig::default()
            },
        );
        match outcome {
            ExploreOutcome::Violation { kind, .. } => {
                assert_eq!(kind, ViolationKind::Validity)
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn post_decide_crashes_catch_rerun_disagreement() {
        let factory = || {
            let mut mem = Memory::new();
            let addr = mem.alloc_register(Value::Bottom);
            let programs: Vec<Box<dyn Program>> = vec![Box::new(ForgetfulDecider { addr, pc: 0 })];
            (mem, programs)
        };
        // Without post-decide crashes the bug is invisible…
        let outcome = explore(
            &factory,
            &ExploreConfig {
                crash_budget: 1,
                crash_after_decide: false,
                ..ExploreConfig::default()
            },
        );
        assert!(outcome.is_verified(), "{outcome:?}");
        // …with them, the model checker finds the re-run disagreement.
        let outcome = explore(
            &factory,
            &ExploreConfig {
                crash_budget: 1,
                crash_after_decide: true,
                ..ExploreConfig::default()
            },
        );
        assert!(outcome.is_violation(), "{outcome:?}");
    }

    #[test]
    fn simultaneous_mode_explores_crash_all() {
        let outcome = explore(
            &|| {
                let mem = Memory::new();
                let programs: Vec<Box<dyn Program>> = vec![
                    Box::new(DecideInput {
                        input: Value::Int(1),
                    }),
                    Box::new(DecideInput {
                        input: Value::Int(1),
                    }),
                ];
                (mem, programs)
            },
            &ExploreConfig {
                crash_budget: 2,
                simultaneous: true,
                ..ExploreConfig::default()
            },
        );
        assert!(outcome.is_verified());
    }
}
