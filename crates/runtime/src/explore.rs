//! Bounded-exhaustive model checking of crash–recovery executions.
//!
//! [`explore`] enumerates **every** execution of a system of [`Program`]s
//! under the paper's adversary, up to a crash budget: at each point the
//! adversary may step any undecided process, or (budget and
//! [`CrashModel`] policy permitting) crash a process / all processes.
//! Reached system states — shared memory contents, every process's
//! volatile state, the decided flags, the crashes used so far — are
//! memoized *exactly* (hash-consed full-fidelity keys, no lossy
//! shortcuts), so the search visits each state once and the verdict is
//! exact.
//!
//! The checked properties are the safety half of recoverable consensus
//! (Section 1):
//!
//! * **agreement** — no two outputs (across processes *and* across re-runs
//!   of one process) differ;
//! * **validity** — every output is one of the declared inputs.
//!
//! Termination (recoverable wait-freedom) holds by construction for the
//! paper's loop-free algorithms and is additionally guarded by the state
//! cap.
//!
//! ## The engine
//!
//! The checker is an **iterative worklist DFS** over an arena of
//! explicit frames — no recursion, so deep crash budgets (very long
//! executions) cannot overflow the call stack. State keys are built from
//! interned `u32` ids ([`ValueInterner`]): probing the visited set
//! allocates nothing for already-seen values, where the seed engine
//! cloned the entire memory and every program key per probe. Violation
//! schedules are reconstructed from per-node **parent links** instead of
//! a live schedule vector.
//!
//! With [`ExploreConfig::threads`] ` > 1` (or via [`explore_parallel`])
//! the search switches to a **parallel frontier** mode: breadth-first
//! levels, each processed in a serial dedup phase (interner + visited
//! probes, fixing node indices and parent links in a deterministic
//! order) followed by parallel expansion across `std::thread` workers,
//! which share the post-crash program cache behind a `parking_lot`
//! mutex. The result is fully deterministic across runs and thread
//! counts: verdicts, state counts and leaf counts equal the serial
//! engine's on any uncapped search (the reachable state space does not
//! depend on exploration order), and when several violations exist the
//! engine reports the lexicographically least schedule of the
//! shallowest violating level — which may differ from the serial DFS's
//! first-found schedule. The state cap is enforced at level
//! granularity, so a capped parallel run may overshoot `max_states` by
//! up to one frontier before reporting truncation.

use crate::crash::CrashModel;
use crate::intern::{StateTable, ValueInterner};
use crate::memory::{Cell, MemOps, Memory};
use crate::program::{Program, Step};
use crate::sched::Action;
use parking_lot::Mutex;
use rc_spec::{Operation, Value};
use std::sync::Arc;

/// Configuration for [`explore`].
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// The crash adversary: budget, independent vs simultaneous mode and
    /// post-decide policy — shared with the randomized schedulers, so
    /// the exact and randomized layers agree on crash legality.
    pub crash: CrashModel,
    /// The declared inputs, for the validity check. `None` skips validity.
    pub inputs: Option<Vec<Value>>,
    /// Cap on distinct states visited. The serial engine visits at most
    /// this many states and reports [`ExploreOutcome::Truncated`] when
    /// one more would be needed; the parallel engine checks the cap
    /// between frontier levels (see the module docs).
    pub max_states: usize,
    /// Worker threads for the parallel frontier mode; `0` and `1` both
    /// select the serial DFS engine.
    pub threads: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            crash: CrashModel::default(),
            inputs: None,
            max_states: 5_000_000,
            threads: 1,
        }
    }
}

/// The result of an exhaustive exploration.
///
/// # Verdict precedence
///
/// `Violation` > `Truncated` > `Verified`: a violation is definitive the
/// moment it is found (its schedule replays from the initial state
/// regardless of how much of the space was explored), so it is reported
/// even if the state cap was also hit. `Truncated` means the cap stopped
/// the search *without* a violation having been found — safety of the
/// unexplored remainder is unknown, so `Verified` is never claimed for a
/// capped run. `Verified` is exact: every reachable state (under the
/// configured adversary) was visited.
#[derive(Clone, Debug)]
pub enum ExploreOutcome {
    /// Every reachable execution satisfies agreement (and validity, if
    /// inputs were declared).
    Verified {
        /// Number of distinct system states visited.
        states: usize,
        /// Number of complete executions (leaves) enumerated, counting
        /// each memoized suffix once.
        leaves: usize,
    },
    /// A safety violation was found; the action sequence reproduces it.
    Violation {
        /// What went wrong.
        kind: ViolationKind,
        /// The schedule that exhibits the violation, from the initial
        /// state.
        schedule: Vec<Action>,
        /// The conflicting outputs observed on that schedule.
        outputs: Vec<Value>,
    },
    /// The state cap was hit before the search completed and no
    /// violation had been found.
    Truncated {
        /// Number of distinct system states visited before giving up.
        states: usize,
    },
}

impl ExploreOutcome {
    /// Whether the outcome proves safety over the explored space.
    pub fn is_verified(&self) -> bool {
        matches!(self, ExploreOutcome::Verified { .. })
    }

    /// Whether a violation was found.
    pub fn is_violation(&self) -> bool {
        matches!(self, ExploreOutcome::Violation { .. })
    }

    /// Whether the state cap stopped the search.
    pub fn is_truncated(&self) -> bool {
        matches!(self, ExploreOutcome::Truncated { .. })
    }
}

/// Which safety property failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// Two outputs differ.
    Agreement,
    /// An output is not among the declared inputs.
    Validity,
}

/// A factory producing the initial system; the model checker clones its
/// output to branch the search.
pub type SystemFactory<'a> = dyn Fn() -> (Memory, Vec<Box<dyn Program>>) + 'a;

/// A copy-on-write shared memory for the search: cell payloads live
/// behind `Arc`s, so branching a state bumps refcounts instead of
/// deep-cloning every register and object state — only the cell a child
/// actually writes is cloned (`Arc::make_mut`), and only while shared.
/// Semantically identical to [`Memory`] (same atomicity, same
/// type-confusion panics).
#[derive(Clone)]
enum CowCell {
    Register(Arc<Value>),
    Object {
        ty: rc_spec::TypeHandle,
        state: Arc<Value>,
    },
}

#[derive(Clone)]
struct CowMemory {
    cells: Vec<CowCell>,
    /// The cell written by the last step, for incremental key updates.
    /// `Program::step` performs at most one shared-memory access, so one
    /// slot suffices; a second write in one step panics (it would make
    /// the incremental keys unsound and the contract is explicit).
    dirty: Option<usize>,
}

impl CowMemory {
    fn from_memory(mem: &Memory) -> Self {
        let cells = (0..mem.len())
            .map(|i| match mem.peek_cell(crate::memory::Addr(i)) {
                Cell::Register(v) => CowCell::Register(Arc::new(v)),
                Cell::Object { ty, state } => CowCell::Object {
                    ty,
                    state: Arc::new(state),
                },
            })
            .collect();
        CowMemory { cells, dirty: None }
    }

    fn value_ref(&self, index: usize) -> &Value {
        match &self.cells[index] {
            CowCell::Register(v) => v,
            CowCell::Object { state, .. } => state,
        }
    }

    fn mark_dirty(&mut self, index: usize) {
        assert!(
            self.dirty.is_none() || self.dirty == Some(index),
            "Program::step performed more than one shared-memory write; \
             the step contract allows at most one access"
        );
        self.dirty = Some(index);
    }

    fn take_dirty(&mut self) -> Option<usize> {
        self.dirty.take()
    }
}

impl MemOps for CowMemory {
    fn read_register(&mut self, addr: crate::memory::Addr) -> Value {
        match &self.cells[addr.0] {
            CowCell::Register(v) => (**v).clone(),
            CowCell::Object { .. } => panic!("{addr} is an object, not a register"),
        }
    }

    fn write_register(&mut self, addr: crate::memory::Addr, value: Value) {
        match &mut self.cells[addr.0] {
            CowCell::Register(v) => *Arc::make_mut(v) = value,
            CowCell::Object { .. } => panic!("{addr} is an object, not a register"),
        }
        self.mark_dirty(addr.0);
    }

    fn read_object(&mut self, addr: crate::memory::Addr) -> Value {
        match &self.cells[addr.0] {
            CowCell::Object { ty, state } => {
                assert!(
                    ty.is_readable(),
                    "type {} is not readable; Read is not available",
                    ty.name()
                );
                (**state).clone()
            }
            CowCell::Register(_) => panic!("{addr} is a register, not an object"),
        }
    }

    fn apply(&mut self, addr: crate::memory::Addr, op: &Operation) -> Value {
        let response = match &mut self.cells[addr.0] {
            CowCell::Object { ty, state } => {
                let t = ty.apply(state, op);
                *Arc::make_mut(state) = t.next;
                t.response
            }
            CowCell::Register(_) => panic!("{addr} is a register, not an object"),
        };
        self.mark_dirty(addr.0);
        response
    }
}

/// Clone-on-write access to one program slot: clones the program only
/// when its `Arc` is shared with sibling states.
fn program_mut(slot: &mut Arc<Box<dyn Program>>) -> &mut dyn Program {
    if Arc::get_mut(slot).is_none() {
        *slot = Arc::new(slot.boxed_clone());
    }
    &mut **Arc::get_mut(slot).expect("just made unique")
}

/// One system state: shared memory, every process's volatile state, the
/// decided flags, crashes used and the first decided value. Cloning is
/// cheap (copy-on-write payloads) — the engine branches by cloning.
#[derive(Clone)]
struct SysState {
    mem: CowMemory,
    programs: Vec<Arc<Box<dyn Program>>>,
    /// Bit `p` set — process `p`'s current run has decided. Packed so
    /// branching clones a word, not a heap vector.
    decided: u64,
    crashes_used: usize,
    decided_value: Option<Value>,
}

impl SysState {
    fn root(mem: Memory, programs: Vec<Box<dyn Program>>) -> Self {
        assert!(
            programs.len() <= 64,
            "the exhaustive checker packs decided flags into a u64; \
             {}-process systems are far beyond exact exploration anyway",
            programs.len()
        );
        SysState {
            mem: CowMemory::from_memory(&mem),
            programs: programs.into_iter().map(Arc::new).collect(),
            decided: 0,
            crashes_used: 0,
            decided_value: None,
        }
    }

    fn is_decided(&self, p: usize) -> bool {
        self.decided & (1 << p) != 0
    }

    /// Every action the adversary may take from this state, in the
    /// engine's canonical order: steps of undecided processes (ascending
    /// pid), then legal crashes (matching
    /// [`CrashModel::legal_crashes`], inlined to build one vector).
    fn enabled_actions(&self, model: &CrashModel) -> Vec<Action> {
        let n = self.programs.len();
        let mut actions: Vec<Action> = Vec::with_capacity(2 * n + 1);
        actions.extend((0..n).filter(|&p| !self.is_decided(p)).map(Action::Step));
        if !model.exhausted(self.crashes_used) {
            match model.mode {
                crate::crash::CrashMode::Simultaneous => {
                    if model.may_crash_all_mask(self.decided) {
                        actions.push(Action::CrashAll);
                    }
                }
                crate::crash::CrashMode::Independent => {
                    actions.extend(
                        (0..n)
                            .filter(|&p| model.may_crash(self.is_decided(p)))
                            .map(Action::Crash),
                    );
                }
            }
        }
        actions
    }
}

/// The post-crash program objects, one per process, computed lazily and
/// shared by every crash branch: [`Program::on_crash`] resets a program
/// to its initial state (input retained — the input never changes across
/// runs), so the crashed object is the same whatever state the crash
/// hit. Sharing it via `Arc` makes crash children allocation-free on the
/// program side. This leans on the same contract the memoization already
/// leans on (`on_crash` resets *everything* volatile; `state_key` is
/// complete).
struct CrashedPrograms {
    progs: Vec<Option<Arc<Box<dyn Program>>>>,
    /// Interned id of each post-crash program key, memoized on first
    /// resolution (the id is constant for the same reason the object is).
    key_ids: Vec<Option<u32>>,
}

/// Where [`apply_to_child`] gets post-crash program objects from.
trait CrashSource {
    fn crashed(&mut self, parent: &SysState, p: usize) -> Arc<Box<dyn Program>>;
}

impl CrashSource for CrashedPrograms {
    fn crashed(&mut self, parent: &SysState, p: usize) -> Arc<Box<dyn Program>> {
        CrashedPrograms::crashed(self, parent, p)
    }
}

/// Step actions never crash anyone; this source is unreachable.
struct NoCrashes;

impl CrashSource for NoCrashes {
    fn crashed(&mut self, _: &SysState, _: usize) -> Arc<Box<dyn Program>> {
        unreachable!("step actions do not crash programs")
    }
}

impl CrashedPrograms {
    fn new(n: usize) -> Self {
        CrashedPrograms {
            progs: vec![None; n],
            key_ids: vec![None; n],
        }
    }

    fn crashed(&mut self, parent: &SysState, p: usize) -> Arc<Box<dyn Program>> {
        self.progs[p]
            .get_or_insert_with(|| {
                let mut fresh = parent.programs[p].boxed_clone();
                fresh.on_crash();
                Arc::new(fresh)
            })
            .clone()
    }

    fn crashed_key_id(&mut self, state: &SysState, p: usize, interner: &mut ValueInterner) -> u32 {
        *self.key_ids[p].get_or_insert_with(|| interner.intern(&state.programs[p].state_key()))
    }
}

/// Slot offsets of the flat interned state key:
/// `[cells | program keys | packed decided bits | crashes | decided value]`.
///
/// Keys are built **incrementally**: a child's key is a copy of its
/// parent's with only the slots the action touched re-interned — the one
/// dirty memory cell (a step performs at most one access), the stepped
/// or crashed program's key, the decided bit, the crash count and the
/// decided value. Unchanged slots keep their parent's ids, which is
/// sound because interned ids are stable and injective.
#[derive(Clone, Copy)]
struct KeyLayout {
    cells: usize,
    n: usize,
}

impl KeyLayout {
    fn of(state: &SysState) -> Self {
        KeyLayout {
            cells: state.mem.cells.len(),
            n: state.programs.len(),
        }
    }

    fn decided_words(&self) -> usize {
        self.n.div_ceil(32)
    }

    fn prog(&self, p: usize) -> usize {
        self.cells + p
    }

    fn decided_word(&self, p: usize) -> usize {
        self.cells + self.n + p / 32
    }

    fn crashes(&self) -> usize {
        self.cells + self.n + self.decided_words()
    }

    fn decided_value(&self) -> usize {
        self.crashes() + 1
    }

    fn len(&self) -> usize {
        self.decided_value() + 1
    }
}

/// Where a pending key slot's value comes from; resolved against the
/// child state with the interner in hand (under the lock, in parallel
/// mode), so no `Value` is ever cloned for key building.
#[derive(Clone, Copy)]
enum Slot {
    Cell(usize),
    Prog(usize),
    /// A program reset by a crash: resolved from the per-engine cache of
    /// post-crash key ids instead of rebuilding and hashing the key.
    Crashed(usize),
    DecidedValue,
}

/// A child's key: the patched copy of the parent's key plus the slots
/// still needing the interner.
struct ChildKey {
    key: Vec<u32>,
    pending: Vec<(usize, Slot)>,
}

impl ChildKey {
    /// The root's key: an all-pending template (decided bits and crash
    /// count are zero, which the template already holds).
    fn root(layout: &KeyLayout) -> Self {
        let mut pending = Vec::with_capacity(layout.cells + layout.n + 1);
        pending.extend((0..layout.cells).map(|i| (i, Slot::Cell(i))));
        pending.extend((0..layout.n).map(|p| (layout.prog(p), Slot::Prog(p))));
        pending.push((layout.decided_value(), Slot::DecidedValue));
        ChildKey {
            key: vec![0; layout.len()],
            pending,
        }
    }

    /// Fills the pending slots from `state`, leaving `key` final.
    fn resolve(
        &mut self,
        state: &SysState,
        crashed: &mut CrashedPrograms,
        interner: &mut ValueInterner,
    ) -> &[u32] {
        for &(pos, slot) in &self.pending {
            self.key[pos] = match slot {
                Slot::Cell(i) => interner.intern(state.mem.value_ref(i)),
                Slot::Prog(p) => interner.intern(&state.programs[p].state_key()),
                Slot::Crashed(p) => crashed.crashed_key_id(state, p, interner),
                Slot::DecidedValue => match &state.decided_value {
                    Some(v) => interner.intern(v),
                    None => ValueInterner::NONE,
                },
            };
        }
        self.pending.clear();
        &self.key
    }
}

/// Clones `parent` and applies `action`. Returns the child, the cell it
/// wrote (if any) and the value it decided (if any) — `decided_value` is
/// deliberately left at the parent's value so the caller can check the
/// decision against it. Crash branches take the shared post-crash
/// program from `crashed` instead of cloning.
fn apply_to_child(
    parent: &SysState,
    action: Action,
    crashed: &mut dyn CrashSource,
) -> (SysState, Option<usize>, Option<Value>) {
    let mut child = parent.clone();
    let mut newly_decided = None;
    match action {
        Action::Step(p) => {
            if let Step::Decided(v) = program_mut(&mut child.programs[p]).step(&mut child.mem) {
                child.decided |= 1 << p;
                newly_decided = Some(v);
            }
        }
        Action::Crash(p) => {
            child.programs[p] = crashed.crashed(parent, p);
            child.decided &= !(1 << p);
            child.crashes_used += 1;
        }
        Action::CrashAll => {
            for p in 0..child.programs.len() {
                child.programs[p] = crashed.crashed(parent, p);
            }
            child.decided = 0;
            child.crashes_used += 1;
        }
    }
    let dirty = child.mem.take_dirty();
    (child, dirty, newly_decided)
}

/// Patches the action-independent raw slots (decided bits, crash count)
/// of a child key already initialized to the parent's key.
fn patch_raw_slots(key: &mut [u32], child: &SysState, action: Action, layout: &KeyLayout) {
    match action {
        Action::Step(p) => {
            if child.is_decided(p) {
                key[layout.decided_word(p)] |= 1 << (p % 32);
            }
        }
        Action::Crash(p) => {
            key[layout.decided_word(p)] &= !(1 << (p % 32));
            key[layout.crashes()] =
                u32::try_from(child.crashes_used).expect("crash budget fits u32");
        }
        Action::CrashAll => {
            for w in 0..layout.decided_words() {
                key[layout.cells + layout.n + w] = 0;
            }
            key[layout.crashes()] =
                u32::try_from(child.crashes_used).expect("crash budget fits u32");
        }
    }
}

/// Checks a fresh decision against the parent's decided value and the
/// validity inputs; on success records it on the child.
fn settle_decision(
    child: &mut SysState,
    newly_decided: Option<Value>,
    inputs: Option<&[Value]>,
) -> Result<bool, (ViolationKind, Vec<Value>)> {
    match newly_decided {
        None => Ok(false),
        Some(v) => {
            // `child.decided_value` still holds the parent's decided
            // value here; the new output is checked against it first.
            if let Some(kind) = check_output(inputs, child.decided_value.as_ref(), &v) {
                return Err((kind, violation_outputs(child.decided_value.as_ref(), v)));
            }
            child.decided_value = Some(v);
            Ok(true)
        }
    }
}

/// The parallel engine's child builder: the key is patched but interner
/// slots stay pending (resolved in the next level's serial phase). The
/// post-crash program cache is shared across workers; its lock is taken
/// only inside [`apply_to_child`]'s crash branches, so step expansion
/// runs lock-free.
fn make_child(
    parent: &SysState,
    parent_key: &[u32],
    action: Action,
    layout: &KeyLayout,
    crashed: &Mutex<CrashedPrograms>,
    inputs: Option<&[Value]>,
) -> Result<(SysState, ChildKey), (ViolationKind, Vec<Value>)> {
    let (mut child, dirty, newly_decided) = match action {
        Action::Step(_) => apply_to_child(parent, action, &mut NoCrashes),
        _ => apply_to_child(parent, action, &mut *crashed.lock()),
    };
    let decided = settle_decision(&mut child, newly_decided, inputs)?;
    let mut key = parent_key.to_vec();
    patch_raw_slots(&mut key, &child, action, layout);
    let mut pending = Vec::with_capacity(4);
    if let Some(cell) = dirty {
        pending.push((cell, Slot::Cell(cell)));
    }
    match action {
        Action::Step(p) => pending.push((layout.prog(p), Slot::Prog(p))),
        Action::Crash(p) => pending.push((layout.prog(p), Slot::Crashed(p))),
        Action::CrashAll => {
            pending.extend((0..layout.n).map(|p| (layout.prog(p), Slot::Crashed(p))));
        }
    }
    if decided {
        pending.push((layout.decided_value(), Slot::DecidedValue));
    }
    Ok((child, ChildKey { key, pending }))
}

/// The serial engine's child builder: the interner is at hand, so the
/// final key is written straight into the reusable `scratch` buffer —
/// children that turn out to be already-visited states allocate nothing
/// beyond the copy-on-write state clone.
#[allow(clippy::too_many_arguments)]
fn make_child_serial(
    parent: &SysState,
    parent_key: &[u32],
    action: Action,
    layout: &KeyLayout,
    crashed: &mut CrashedPrograms,
    interner: &mut ValueInterner,
    inputs: Option<&[Value]>,
    scratch: &mut Vec<u32>,
) -> Result<SysState, (ViolationKind, Vec<Value>)> {
    let (mut child, dirty, newly_decided) = apply_to_child(parent, action, crashed);
    let decided = settle_decision(&mut child, newly_decided, inputs)?;
    scratch.clear();
    scratch.extend_from_slice(parent_key);
    patch_raw_slots(scratch, &child, action, layout);
    if let Some(cell) = dirty {
        scratch[cell] = interner.intern(child.mem.value_ref(cell));
    }
    match action {
        Action::Step(p) => {
            scratch[layout.prog(p)] = interner.intern(&child.programs[p].state_key());
        }
        Action::Crash(p) => {
            scratch[layout.prog(p)] = crashed.crashed_key_id(&child, p, interner);
        }
        Action::CrashAll => {
            for p in 0..layout.n {
                scratch[layout.prog(p)] = crashed.crashed_key_id(&child, p, interner);
            }
        }
    }
    if decided {
        scratch[layout.decided_value()] = match &child.decided_value {
            Some(v) => interner.intern(v),
            None => ValueInterner::NONE,
        };
    }
    Ok(child)
}

fn check_output(
    inputs: Option<&[Value]>,
    decided: Option<&Value>,
    v: &Value,
) -> Option<ViolationKind> {
    if let Some(d) = decided {
        if d != v {
            return Some(ViolationKind::Agreement);
        }
    }
    if let Some(inputs) = inputs {
        if !inputs.contains(v) {
            return Some(ViolationKind::Validity);
        }
    }
    None
}

fn violation_outputs(decided: Option<&Value>, v: Value) -> Vec<Value> {
    match decided {
        Some(d) => vec![d.clone(), v],
        None => vec![v],
    }
}

/// Walks parent links back to the root, returning the action sequence
/// that reaches node `idx` from the initial state.
fn schedule_to(parents: &[Option<(u32, Action)>], mut idx: u32) -> Vec<Action> {
    let mut schedule = Vec::new();
    while let Some((parent, action)) = parents[idx as usize] {
        schedule.push(action);
        idx = parent;
    }
    schedule.reverse();
    schedule
}

/// A DFS frame: one visited node plus a cursor over its enabled actions.
struct Frame {
    state: SysState,
    key: Vec<u32>,
    idx: u32,
    actions: Vec<Action>,
    cursor: usize,
}

struct SerialEngine<'a> {
    config: &'a ExploreConfig,
    interner: ValueInterner,
    visited: StateTable,
    parents: Vec<Option<(u32, Action)>>,
    crashed: CrashedPrograms,
    leaves: usize,
    truncated: bool,
}

impl SerialEngine<'_> {
    /// Enters the state whose resolved key is `key`: memoizes it and,
    /// when new and non-terminal, returns the frame to push. Sets
    /// `truncated` when the state is new but the cap is already full.
    fn enter(
        &mut self,
        state: SysState,
        key: &[u32],
        parent: Option<(u32, Action)>,
    ) -> Option<Frame> {
        if self.visited.len() >= self.config.max_states {
            // At the cap, only a *new* state means truncation.
            if self.visited.get(key).is_none() {
                self.truncated = true;
            }
            return None;
        }
        let (idx, is_new) = self.visited.insert(key);
        if !is_new {
            return None;
        }
        self.parents.push(parent);
        let actions = state.enabled_actions(&self.config.crash);
        if actions.is_empty() {
            self.leaves += 1;
            return None;
        }
        Some(Frame {
            state,
            key: key.to_vec(),
            idx,
            actions,
            cursor: 0,
        })
    }
}

fn explore_serial(root: SysState, config: &ExploreConfig) -> ExploreOutcome {
    let layout = KeyLayout::of(&root);
    let mut engine = SerialEngine {
        config,
        interner: ValueInterner::new(),
        visited: StateTable::new(),
        parents: Vec::new(),
        crashed: CrashedPrograms::new(layout.n),
        leaves: 0,
        truncated: false,
    };
    let mut scratch: Vec<u32> = Vec::with_capacity(layout.len());
    let mut stack: Vec<Frame> = Vec::new();
    {
        let mut root_key = ChildKey::root(&layout);
        root_key.resolve(&root, &mut engine.crashed, &mut engine.interner);
        if let Some(frame) = engine.enter(root, &root_key.key, None) {
            stack.push(frame);
        }
    }
    while !stack.is_empty() && !engine.truncated {
        let top = stack.last_mut().expect("non-empty stack");
        if top.cursor >= top.actions.len() {
            stack.pop();
            continue;
        }
        let action = top.actions[top.cursor];
        top.cursor += 1;
        let parent_idx = top.idx;
        match make_child_serial(
            &top.state,
            &top.key,
            action,
            &layout,
            &mut engine.crashed,
            &mut engine.interner,
            config.inputs.as_deref(),
            &mut scratch,
        ) {
            Err((kind, outputs)) => {
                let mut schedule = schedule_to(&engine.parents, parent_idx);
                schedule.push(action);
                return ExploreOutcome::Violation {
                    kind,
                    schedule,
                    outputs,
                };
            }
            Ok(child) => {
                if let Some(frame) = engine.enter(child, &scratch, Some((parent_idx, action))) {
                    stack.push(frame);
                }
            }
        }
    }
    if engine.truncated {
        ExploreOutcome::Truncated {
            states: engine.visited.len(),
        }
    } else {
        ExploreOutcome::Verified {
            states: engine.visited.len(),
            leaves: engine.leaves,
        }
    }
}

/// A violation observed while expanding a frontier node: the parent's
/// node index plus the offending action and evidence.
struct FoundViolation {
    parent: u32,
    action: Action,
    kind: ViolationKind,
    outputs: Vec<Value>,
}

/// The parallel frontier engine: breadth-first levels, each processed
/// in two phases. Phase 1 (serial) resolves keys against the interner
/// and deduplicates against the visited set — this fixes parent links
/// and node indices in a deterministic order, which is what makes
/// reported violation schedules independent of thread timing. Phase 2
/// (parallel) expands the new nodes — the expensive part: cloning,
/// stepping programs, building child keys — across `std::thread`
/// workers, which share the post-crash program cache behind a
/// `parking_lot` mutex.
fn explore_frontier(root: SysState, config: &ExploreConfig, threads: usize) -> ExploreOutcome {
    let layout = KeyLayout::of(&root);
    let mut interner = ValueInterner::new();
    let mut visited = StateTable::new();
    let mut parents: Vec<Option<(u32, Action)>> = Vec::new();
    let mut leaves = 0usize;
    let mut phase1_crashed = CrashedPrograms::new(layout.n);
    let shared_crashed = Mutex::new(CrashedPrograms::new(layout.n));
    type Item = (SysState, ChildKey, Option<(u32, Action)>);
    /// A deduplicated node awaiting expansion: state, resolved key,
    /// node index and its enabled actions.
    type Expand = (SysState, Vec<u32>, u32, Vec<Action>);
    let mut frontier: Vec<Item> = vec![(root, ChildKey::root(&layout), None)];
    let mut truncated = false;

    while !frontier.is_empty() {
        // Phase 1: serial dedup. Frontier order is deterministic (chunk
        // results are concatenated in spawn order), so the winning
        // parent of every state is too.
        let mut expand: Vec<Expand> = Vec::new();
        for (state, mut child_key, parent) in frontier.drain(..) {
            let key = child_key.resolve(&state, &mut phase1_crashed, &mut interner);
            let (idx, is_new) = visited.insert(key);
            if !is_new {
                continue;
            }
            parents.push(parent);
            let actions = state.enabled_actions(&config.crash);
            if actions.is_empty() {
                leaves += 1;
                continue;
            }
            expand.push((state, child_key.key, idx, actions));
        }
        if visited.len() >= config.max_states && !expand.is_empty() {
            truncated = true;
            break;
        }

        // Phase 2: parallel expansion. Owned per-worker chunks —
        // `Program` is `Send` but not `Sync`, so frontier items move
        // into their worker rather than being shared by reference.
        let mut chunks: Vec<Vec<Expand>> = (0..threads).map(|_| Vec::new()).collect();
        for (i, node) in expand.into_iter().enumerate() {
            chunks[i % threads].push(node);
        }
        let level: Vec<(Vec<Item>, Vec<FoundViolation>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .filter(|chunk| !chunk.is_empty())
                .map(|chunk| {
                    let shared_crashed = &shared_crashed;
                    let config = &*config;
                    scope.spawn(move || {
                        let mut next = Vec::new();
                        let mut violations = Vec::new();
                        for (state, key, idx, actions) in chunk {
                            for &action in &actions {
                                match make_child(
                                    &state,
                                    &key,
                                    action,
                                    &layout,
                                    shared_crashed,
                                    config.inputs.as_deref(),
                                ) {
                                    Err((kind, outputs)) => violations.push(FoundViolation {
                                        parent: idx,
                                        action,
                                        kind,
                                        outputs,
                                    }),
                                    Ok((child, child_key)) => {
                                        next.push((child, child_key, Some((idx, action))));
                                    }
                                }
                            }
                        }
                        (next, violations)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });

        let mut violations: Vec<FoundViolation> = Vec::new();
        let mut next_frontier: Vec<Item> = Vec::new();
        for (next, viols) in level {
            next_frontier.extend(next);
            violations.extend(viols);
        }
        if !violations.is_empty() {
            // Parent links are deterministic (phase 1), so every
            // reconstructed schedule is; the lexicographically least of
            // the shallowest violating level is the canonical witness.
            return violations
                .into_iter()
                .map(|v| {
                    let mut schedule = schedule_to(&parents, v.parent);
                    schedule.push(v.action);
                    (schedule, v.kind, v.outputs)
                })
                .min_by(|a, b| a.0.cmp(&b.0))
                .map(|(schedule, kind, outputs)| ExploreOutcome::Violation {
                    kind,
                    schedule,
                    outputs,
                })
                .expect("non-empty violations");
        }
        frontier = next_frontier;
    }

    if truncated {
        ExploreOutcome::Truncated {
            states: visited.len(),
        }
    } else {
        ExploreOutcome::Verified {
            states: visited.len(),
            leaves,
        }
    }
}

/// Exhaustively explores every execution of the system produced by
/// `factory` under `config`'s adversary. Dispatches to the serial DFS
/// engine, or to the parallel frontier engine when
/// [`ExploreConfig::threads`] ` > 1`.
pub fn explore(factory: &SystemFactory<'_>, config: &ExploreConfig) -> ExploreOutcome {
    let (mem, programs) = factory();
    let root = SysState::root(mem, programs);
    if config.threads > 1 {
        explore_frontier(root, config, config.threads)
    } else {
        explore_serial(root, config)
    }
}

/// [`explore`] in parallel frontier mode: uses
/// [`ExploreConfig::threads`] workers, or every available CPU when the
/// config says serial. Verdicts and state counts match [`explore`] on
/// any uncapped search.
pub fn explore_parallel(factory: &SystemFactory<'_>, config: &ExploreConfig) -> ExploreOutcome {
    let threads = if config.threads > 1 {
        config.threads
    } else {
        std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get)
    };
    let (mem, programs) = factory();
    explore_frontier(SysState::root(mem, programs), config, threads.max(2))
}

/// The seed engine: recursive DFS memoizing on freshly allocated
/// structural key tuples, kept **only** as the measurement baseline for
/// experiment E11 (old-vs-new states/sec). It routes crash legality
/// through the same [`CrashModel`] as [`explore`], so verdicts and state
/// counts are identical — only the allocation profile and the recursion
/// differ. Scheduled for deletion once the E11 trajectory is
/// established; do not use it for new work (it overflows the call stack
/// at deep crash budgets).
pub fn explore_legacy(factory: &SystemFactory<'_>, config: &ExploreConfig) -> ExploreOutcome {
    type StructuralKey = (Vec<Value>, Vec<Value>, Vec<bool>, usize, Option<Value>);

    /// The seed representation: deep-cloned memory and boxed programs
    /// per branch (no copy-on-write), so the baseline's allocation
    /// profile is preserved faithfully.
    #[derive(Clone)]
    struct Node {
        mem: Memory,
        programs: Vec<Box<dyn Program>>,
        decided: Vec<bool>,
        crashes_used: usize,
        decided_value: Option<Value>,
    }

    impl Node {
        fn key(&self) -> StructuralKey {
            (
                self.mem.state_key(),
                self.programs.iter().map(|p| p.state_key()).collect(),
                self.decided.clone(),
                self.crashes_used,
                self.decided_value.clone(),
            )
        }

        fn apply(&mut self, action: Action) -> Option<Value> {
            match action {
                Action::Step(p) => match self.programs[p].step(&mut self.mem) {
                    Step::Decided(v) => {
                        self.decided[p] = true;
                        Some(v)
                    }
                    Step::Running => None,
                },
                Action::Crash(p) => {
                    self.programs[p].on_crash();
                    self.decided[p] = false;
                    self.crashes_used += 1;
                    None
                }
                Action::CrashAll => {
                    for (p, prog) in self.programs.iter_mut().enumerate() {
                        prog.on_crash();
                        self.decided[p] = false;
                    }
                    self.crashes_used += 1;
                    None
                }
            }
        }

        fn enabled_actions(&self, model: &CrashModel) -> Vec<Action> {
            let mut actions: Vec<Action> = (0..self.programs.len())
                .filter(|&p| !self.decided[p])
                .map(Action::Step)
                .collect();
            actions.extend(model.legal_crashes(&self.decided, self.crashes_used));
            actions
        }
    }

    struct Search<'a> {
        config: &'a ExploreConfig,
        visited: std::collections::HashSet<StructuralKey>,
        schedule: Vec<Action>,
        leaves: usize,
        truncated: bool,
        violation: Option<(ViolationKind, Vec<Action>, Vec<Value>)>,
    }

    impl Search<'_> {
        fn dfs(&mut self, node: Node) {
            if self.violation.is_some() || self.truncated {
                return;
            }
            let key = node.key();
            if self.visited.contains(&key) {
                return;
            }
            if self.visited.len() >= self.config.max_states {
                self.truncated = true;
                return;
            }
            self.visited.insert(key);
            let actions = node.enabled_actions(&self.config.crash);
            if actions.is_empty() {
                self.leaves += 1;
                return;
            }
            for action in actions {
                let mut next = node.clone();
                self.schedule.push(action);
                if let Some(v) = next.apply(action) {
                    if let Some(kind) = check_output(
                        self.config.inputs.as_deref(),
                        next.decided_value.as_ref(),
                        &v,
                    ) {
                        self.violation = Some((
                            kind,
                            self.schedule.clone(),
                            violation_outputs(next.decided_value.as_ref(), v),
                        ));
                        self.schedule.pop();
                        return;
                    }
                    next.decided_value = Some(v);
                }
                self.dfs(next);
                self.schedule.pop();
                if self.violation.is_some() || self.truncated {
                    return;
                }
            }
        }
    }

    let (mem, programs) = factory();
    let n = programs.len();
    let mut search = Search {
        config,
        visited: std::collections::HashSet::new(),
        schedule: Vec::new(),
        leaves: 0,
        truncated: false,
        violation: None,
    };
    search.dfs(Node {
        mem,
        programs,
        decided: vec![false; n],
        crashes_used: 0,
        decided_value: None,
    });
    if let Some((kind, schedule, outputs)) = search.violation {
        ExploreOutcome::Violation {
            kind,
            schedule,
            outputs,
        }
    } else if search.truncated {
        ExploreOutcome::Truncated {
            states: search.visited.len(),
        }
    } else {
        ExploreOutcome::Verified {
            states: search.visited.len(),
            leaves: search.leaves,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{Addr, MemOps};

    /// A correct 1-process program: decides its input.
    #[derive(Clone, Debug)]
    struct DecideInput {
        input: Value,
    }
    impl Program for DecideInput {
        fn step(&mut self, _: &mut dyn MemOps) -> Step {
            Step::Decided(self.input.clone())
        }
        fn on_crash(&mut self) {}
        fn state_key(&self) -> Value {
            Value::Unit
        }
        fn boxed_clone(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
    }

    /// A deliberately broken 2-process "consensus": each decides its own
    /// input — agreement fails whenever inputs differ.
    #[derive(Clone, Debug)]
    struct DecideOwn {
        input: Value,
    }
    impl Program for DecideOwn {
        fn step(&mut self, _: &mut dyn MemOps) -> Step {
            Step::Decided(self.input.clone())
        }
        fn on_crash(&mut self) {}
        fn state_key(&self) -> Value {
            Value::Unit
        }
        fn boxed_clone(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
    }

    /// Writes 0 on the first run, and after a crash decides 1 — violating
    /// agreement across re-runs of the *same* process when combined with
    /// the first run's decision. Used to check post-decide crash handling.
    #[derive(Clone, Debug)]
    struct ForgetfulDecider {
        addr: Addr,
        pc: u8,
    }
    impl Program for ForgetfulDecider {
        fn step(&mut self, mem: &mut dyn MemOps) -> Step {
            match self.pc {
                0 => {
                    // First run: decide 0 and mark the memory.
                    let seen = mem.read_register(self.addr);
                    self.pc = 1;
                    if seen.is_bottom() {
                        Step::Running
                    } else {
                        // Recovery run: decide differently. BUG by design.
                        Step::Decided(Value::Int(1))
                    }
                }
                _ => {
                    mem.write_register(self.addr, Value::Int(0));
                    Step::Decided(Value::Int(0))
                }
            }
        }
        fn on_crash(&mut self) {
            self.pc = 0;
        }
        fn state_key(&self) -> Value {
            Value::Int(i64::from(self.pc))
        }
        fn boxed_clone(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
    }

    fn forgetful_factory() -> (Memory, Vec<Box<dyn Program>>) {
        let mut mem = Memory::new();
        let addr = mem.alloc_register(Value::Bottom);
        let programs: Vec<Box<dyn Program>> = vec![Box::new(ForgetfulDecider { addr, pc: 0 })];
        (mem, programs)
    }

    #[test]
    fn verifies_trivial_agreeing_system() {
        let outcome = explore(
            &|| {
                let mem = Memory::new();
                let programs: Vec<Box<dyn Program>> = vec![
                    Box::new(DecideInput {
                        input: Value::Int(3),
                    }),
                    Box::new(DecideInput {
                        input: Value::Int(3),
                    }),
                ];
                (mem, programs)
            },
            &ExploreConfig {
                crash: CrashModel::independent(2),
                inputs: Some(vec![Value::Int(3)]),
                ..ExploreConfig::default()
            },
        );
        assert!(outcome.is_verified(), "{outcome:?}");
    }

    #[test]
    fn finds_agreement_violation() {
        let outcome = explore(
            &|| {
                let mem = Memory::new();
                let programs: Vec<Box<dyn Program>> = vec![
                    Box::new(DecideOwn {
                        input: Value::Int(0),
                    }),
                    Box::new(DecideOwn {
                        input: Value::Int(1),
                    }),
                ];
                (mem, programs)
            },
            &ExploreConfig::default(),
        );
        match outcome {
            ExploreOutcome::Violation {
                kind,
                schedule,
                outputs,
                ..
            } => {
                assert_eq!(kind, ViolationKind::Agreement);
                assert_eq!(schedule.len(), 2, "two steps suffice");
                assert_eq!(outputs.len(), 2);
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn finds_validity_violation() {
        let outcome = explore(
            &|| {
                let mem = Memory::new();
                let programs: Vec<Box<dyn Program>> = vec![Box::new(DecideInput {
                    input: Value::Int(9),
                })];
                (mem, programs)
            },
            &ExploreConfig {
                inputs: Some(vec![Value::Int(0), Value::Int(1)]),
                ..ExploreConfig::default()
            },
        );
        match outcome {
            ExploreOutcome::Violation { kind, .. } => {
                assert_eq!(kind, ViolationKind::Validity)
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn post_decide_crashes_catch_rerun_disagreement() {
        // Without post-decide crashes the bug is invisible…
        let outcome = explore(
            &forgetful_factory,
            &ExploreConfig {
                crash: CrashModel::independent(1),
                ..ExploreConfig::default()
            },
        );
        assert!(outcome.is_verified(), "{outcome:?}");
        // …with them, the model checker finds the re-run disagreement.
        let outcome = explore(
            &forgetful_factory,
            &ExploreConfig {
                crash: CrashModel::independent(1).after_decide(true),
                ..ExploreConfig::default()
            },
        );
        assert!(outcome.is_violation(), "{outcome:?}");
    }

    /// Regression: the simultaneous branch used to reset decided
    /// processes even with post-decide crashes disabled, finding
    /// "violations" the configured adversary cannot produce.
    #[test]
    fn simultaneous_crashes_respect_post_decide_policy() {
        let outcome = explore(
            &forgetful_factory,
            &ExploreConfig {
                crash: CrashModel::simultaneous(1),
                ..ExploreConfig::default()
            },
        );
        assert!(
            outcome.is_verified(),
            "CrashAll must not reset a decided run when post-decide \
             crashes are disabled: {outcome:?}"
        );
        let outcome = explore(
            &forgetful_factory,
            &ExploreConfig {
                crash: CrashModel::simultaneous(1).after_decide(true),
                ..ExploreConfig::default()
            },
        );
        assert!(outcome.is_violation(), "{outcome:?}");
    }

    #[test]
    fn simultaneous_mode_explores_crash_all() {
        let outcome = explore(
            &|| {
                let mem = Memory::new();
                let programs: Vec<Box<dyn Program>> = vec![
                    Box::new(DecideInput {
                        input: Value::Int(1),
                    }),
                    Box::new(DecideInput {
                        input: Value::Int(1),
                    }),
                ];
                (mem, programs)
            },
            &ExploreConfig {
                crash: CrashModel::simultaneous(2).after_decide(true),
                ..ExploreConfig::default()
            },
        );
        assert!(outcome.is_verified());
    }

    /// Regression: the cap used to trigger only after `max_states + 1`
    /// states had been visited. Now exactly `max_states` are visited,
    /// and a cap equal to the state-space size still verifies.
    #[test]
    fn state_cap_is_exact() {
        let factory = forgetful_factory;
        let config = ExploreConfig {
            crash: CrashModel::independent(1).after_decide(false),
            ..ExploreConfig::default()
        };
        let total = match explore(&factory, &config) {
            ExploreOutcome::Verified { states, .. } => states,
            other => panic!("expected verified, got {other:?}"),
        };
        // A cap exactly at the state-space size does not truncate.
        let outcome = explore(
            &factory,
            &ExploreConfig {
                max_states: total,
                ..config.clone()
            },
        );
        assert!(outcome.is_verified(), "{outcome:?}");
        // One below: truncates having visited exactly the cap.
        let outcome = explore(
            &factory,
            &ExploreConfig {
                max_states: total - 1,
                ..config.clone()
            },
        );
        match outcome {
            ExploreOutcome::Truncated { states } => assert_eq!(states, total - 1),
            other => panic!("expected truncation, got {other:?}"),
        }
        assert!(outcome.is_truncated());
    }

    /// The iterative engine survives crash budgets that would overflow
    /// the recursive seed engine's call stack (execution length grows
    /// linearly with the budget).
    #[test]
    fn deep_crash_budgets_do_not_overflow() {
        let outcome = explore(
            &|| {
                let mut mem = Memory::new();
                let addr = mem.alloc_register(Value::Bottom);
                #[derive(Clone, Debug)]
                struct WriteThenDecide {
                    addr: Addr,
                    pc: u8,
                }
                impl Program for WriteThenDecide {
                    fn step(&mut self, mem: &mut dyn MemOps) -> Step {
                        if self.pc == 0 {
                            mem.write_register(self.addr, Value::Int(1));
                            self.pc = 1;
                            Step::Running
                        } else {
                            Step::Decided(mem.read_register(self.addr))
                        }
                    }
                    fn on_crash(&mut self) {
                        self.pc = 0;
                    }
                    fn state_key(&self) -> Value {
                        Value::Int(i64::from(self.pc))
                    }
                    fn boxed_clone(&self) -> Box<dyn Program> {
                        Box::new(self.clone())
                    }
                }
                let programs: Vec<Box<dyn Program>> =
                    vec![Box::new(WriteThenDecide { addr, pc: 0 })];
                (mem, programs)
            },
            &ExploreConfig {
                crash: CrashModel::independent(50_000).after_decide(true),
                ..ExploreConfig::default()
            },
        );
        assert!(outcome.is_verified(), "{outcome:?}");
    }

    /// Serial and parallel engines agree on verdicts, state counts and
    /// leaf counts; the legacy baseline agrees too.
    #[test]
    fn parallel_engine_matches_serial() {
        let factory = forgetful_factory;
        for after_decide in [false, true] {
            let config = ExploreConfig {
                crash: CrashModel::independent(2).after_decide(after_decide),
                ..ExploreConfig::default()
            };
            let serial = explore(&factory, &config);
            let parallel = explore_parallel(
                &factory,
                &ExploreConfig {
                    threads: 4,
                    ..config.clone()
                },
            );
            let legacy = explore_legacy(&factory, &config);
            match (&serial, &parallel, &legacy) {
                (
                    ExploreOutcome::Verified { states, leaves },
                    ExploreOutcome::Verified {
                        states: p_states,
                        leaves: p_leaves,
                    },
                    ExploreOutcome::Verified {
                        states: l_states,
                        leaves: l_leaves,
                    },
                ) => {
                    assert_eq!(states, p_states);
                    assert_eq!(leaves, p_leaves);
                    assert_eq!(states, l_states);
                    assert_eq!(leaves, l_leaves);
                }
                (
                    ExploreOutcome::Violation { kind, .. },
                    ExploreOutcome::Violation { kind: p_kind, .. },
                    ExploreOutcome::Violation { kind: l_kind, .. },
                ) => {
                    assert_eq!(kind, p_kind);
                    assert_eq!(kind, l_kind);
                }
                other => panic!("engines disagree: {other:?}"),
            }
        }
    }

    /// The parallel engine's violation pick is deterministic across
    /// repeated runs and thread counts.
    #[test]
    fn parallel_violation_is_deterministic() {
        let factory = || {
            let mem = Memory::new();
            let programs: Vec<Box<dyn Program>> = vec![
                Box::new(DecideOwn {
                    input: Value::Int(0),
                }),
                Box::new(DecideOwn {
                    input: Value::Int(1),
                }),
                Box::new(DecideOwn {
                    input: Value::Int(2),
                }),
            ];
            (mem, programs)
        };
        let mut schedules = Vec::new();
        for threads in [2usize, 3, 4, 2, 3, 4] {
            match explore(
                &factory,
                &ExploreConfig {
                    threads,
                    ..ExploreConfig::default()
                },
            ) {
                ExploreOutcome::Violation { schedule, .. } => schedules.push(schedule),
                other => panic!("expected violation, got {other:?}"),
            }
        }
        for s in &schedules[1..] {
            assert_eq!(s, &schedules[0]);
        }
    }
}
