//! Bounded-exhaustive model checking of crash–recovery executions.
//!
//! [`explore`] enumerates **every** execution of a system of [`Program`]s
//! under the paper's adversary, up to a crash budget: at each point the
//! adversary may step any undecided process, or (budget and
//! [`CrashModel`] policy permitting) crash a process / all processes.
//! Reached system states — shared memory contents, every process's
//! volatile state, the decided flags, the crashes used so far — are
//! memoized *exactly* (hash-consed full-fidelity keys, no lossy
//! shortcuts), so the search visits each state once and the verdict is
//! exact.
//!
//! The checked properties are the safety half of recoverable consensus
//! (Section 1):
//!
//! * **agreement** — no two outputs (across processes *and* across re-runs
//!   of one process) differ;
//! * **validity** — every output is one of the declared inputs.
//!
//! Termination (recoverable wait-freedom) holds by construction for the
//! paper's loop-free algorithms and is additionally guarded by the state
//! cap.
//!
//! ## The engine
//!
//! The checker is an **iterative worklist DFS** over an arena of
//! explicit frames — no recursion, so deep crash budgets (very long
//! executions) cannot overflow the call stack. State keys are built from
//! interned `u32` ids ([`ValueInterner`]): probing the visited set
//! allocates nothing for already-seen values, where the seed engine
//! cloned the entire memory and every program key per probe. Violation
//! schedules are reconstructed from per-node **parent links** instead of
//! a live schedule vector.
//!
//! With [`ExploreConfig::threads`] ` > 1` (or via [`explore_parallel`])
//! the search switches to a **parallel frontier** mode: breadth-first
//! levels run through a *shard → reconcile → expand* pipeline in which
//! both the expensive halves — child expansion **and** dedup — execute
//! across `std::thread` workers, with only two cheap serial
//! reconciliation passes per level (promoting newly seen values into
//! the global interner and mapping per-shard inserts into the global
//! node-index space, both in canonical frontier order). The result is
//! fully deterministic across runs and thread counts: verdicts, state
//! counts, leaf counts and the `Truncated` state count are
//! byte-identical to the serial engine's for every config (the cap is
//! exact in both engines: a search truncates iff it would need a
//! `max_states + 1`-th distinct state, and reports exactly
//! `max_states`). When several violations exist the engine reports the
//! lexicographically least schedule of the shallowest violating level —
//! which may differ from the serial DFS's first-found schedule, and on
//! a *capped violating* search the engines may even split between
//! `Violation` and `Truncated` (they walk different prefixes of the
//! state space; a found violation is always reported, see the verdict
//! precedence on [`ExploreOutcome`]).
//!
//! ## Process-symmetry reduction
//!
//! [`explore_symmetric`] accepts a factory that also declares a
//! [`SymmetrySpec`] — which process ids are interchangeable (identical
//! program, identical input, per-process cells registered). Both engines
//! then map every child state to a **canonical representative** under
//! process-id permutation before the interner/visited lookup, so entire
//! permutation classes collapse to one stored state: verdicts are
//! unchanged, state counts shrink by up to the product of the orbit
//! factorials, leaf counts stay identical (canonical leaves are weighted
//! by their class size), and violation witnesses are reported in
//! *original* process ids by threading the inverse permutations through
//! the parent links. Canonical representatives are chosen by
//! *structural* signature ordering — never by interner ids — so the
//! reduction composes with the frontier pipeline without disturbing the
//! byte-identical determinism across runs and thread counts. See the
//! [`canon`](crate::canon) module for the soundness argument.
//!
//! ## Partial-order reduction
//!
//! [`ExploreConfig::por`] switches on a **persistent-set + sleep-set
//! reduction** driven by the per-local-state footprint analysis
//! ([`crate::footprint::analyze_system_states`]): at each crash-free
//! node the engine expands a singleton persistent set when one enabled
//! step is statically independent of everything the other processes can
//! ever do (crash-free future footprints; the decision pseudo-cell
//! makes any two possibly-deciding steps dependent), and sleep sets —
//! carried in the node keys, so node identity is `(state, sleep set)` —
//! remove interleavings already covered by sibling subtrees. Any
//! enabled crash transition forces full expansion (crashes are
//! dependent with everything), which keeps every [`CrashModel`]
//! adversary complete. Verdicts and leaf counts are identical to the
//! unreduced search; state counts shrink. The reduction composes with
//! symmetry (the sleep set joins the canonical signature and permutes
//! with its processes) and with the frontier pipeline (sleep masks are
//! precomputed serially per level, so outcomes stay byte-identical
//! across engines and thread counts). [`lint_ample`] checks the
//! eligibility conditions statically and spot-checks pruned
//! interleavings dynamically.

use crate::canon::{self, SymmetrySpec};
use crate::crash::CrashModel;
use crate::footprint::{
    analyze_system, analyze_system_states, system_analysis_cached, AnalysisBudget, CellSet,
    LocalStateInfo, StaticIndependence, SystemAnalysis, SystemFootprint,
};
use crate::intern::{Resolved, ShardInterner, ShardedStateTable, StateTable, ValueInterner};
use crate::memory::{Cell, MemOps, Memory};
use crate::program::{Pid, Program, Rebinding, Step};
use crate::sched::Action;
use crate::storage::{packed_key_len, StorageTier, VisitedTable, WitnessLog};
use rc_spec::{Operation, Value};
use std::collections::HashMap;
use std::hash::Hasher;
use std::sync::Arc;

/// Configuration for [`explore`].
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// The crash adversary: budget, independent vs simultaneous mode and
    /// post-decide policy — shared with the randomized schedulers, so
    /// the exact and randomized layers agree on crash legality.
    pub crash: CrashModel,
    /// The declared inputs, for the validity check. `None` skips validity.
    pub inputs: Option<Vec<Value>>,
    /// Cap on distinct states visited. Both engines visit at most this
    /// many states and report [`ExploreOutcome::Truncated`] — with a
    /// `states` count of exactly `max_states` — when one more would be
    /// needed; a cap equal to the reachable state-space size still
    /// verifies.
    pub max_states: usize,
    /// Worker threads for the parallel frontier mode; `0` and `1` both
    /// select the serial DFS engine.
    pub threads: usize,
    /// Forces the frontier engine's per-level worker count, bypassing
    /// the machine-aware policy (which clamps by
    /// `available_parallelism()` and level size). Outcomes are
    /// independent of this knob; it exists so tests and CI can exercise
    /// the staged multi-worker pipeline on single-core hosts.
    pub workers_override: Option<usize>,
    /// Forces the number of visited-set shards (default:
    /// `min(threads, cores)`). Outcomes are independent of this knob.
    pub shards_override: Option<usize>,
    /// Cross-validates the static independence relation derived by the
    /// footprint analysis ([`crate::footprint`]): at every expanded
    /// state, each pair of enabled steps the relation calls independent
    /// is applied in both orders and the results asserted identical
    /// (memory cells, both programs' state keys, decided flags and
    /// outputs). Purely a soundness check for the POR prerequisite —
    /// outcomes and counts are unchanged; the search only gets slower.
    /// Panics at search start if the system defeats the analysis
    /// (budget exhaustion): an explicit request to cross-validate an
    /// unanalyzable system is an error, not a silent no-op.
    pub cross_validate_independence: bool,
    /// Switches on the footprint-driven **partial-order reduction**
    /// (persistent + sleep sets; see the module docs). Verdicts and
    /// leaf counts are identical to the unreduced search; state counts
    /// shrink. Panics at search start when the system is ineligible —
    /// the footprint analysis fails, a process's step graph is cyclic,
    /// or (with symmetry) the orbit members' per-state footprints are
    /// not equivariant: an explicit POR request must not silently run
    /// unreduced. [`lint_ample`] reports the same conditions without
    /// running a search.
    pub por: bool,
    /// Cache key for the footprint analysis POR runs on
    /// ([`crate::footprint::system_analysis_cached`]). Must uniquely
    /// identify the system's construction (the catalog benchmarks use
    /// their row labels); `None` analyzes uncached.
    pub analysis_id: Option<String>,
    /// Which storage backend holds the visited set (see
    /// [`StorageTier`]). Every tier is exact; verdicts, state counts,
    /// leaf counts and witnesses are byte-identical across tiers (and
    /// thread counts) — the tiers trade probe cost against resident
    /// memory. Default: [`StorageTier::Packed`] (the bit-packed arena;
    /// parity with the historical flat layout is asserted across the
    /// whole E16 tier × thread grid); [`StorageTier::Flat`] remains
    /// available as the opt-out.
    pub storage: StorageTier,
    /// Cap on *accounted* visited-set bytes, alongside
    /// [`max_states`](Self::max_states). The account is a deterministic
    /// cost model — each accepted state charges its packed key length
    /// ([`packed_key_len`]) plus a fixed per-entry overhead, in
    /// canonical acceptance order — **not** the allocator's live
    /// footprint, so truncation points are byte-identical across
    /// storage tiers, thread counts and shard counts. A capped search
    /// reports [`ExploreOutcome::Truncated`] exactly like a
    /// `max_states` cut. Setting this routes even `threads ≤ 1` runs
    /// through the frontier engine (whose canonical acceptance order is
    /// thread-count-invariant; the serial DFS accepts in a different
    /// order and would truncate elsewhere).
    pub max_bytes: Option<usize>,
    /// Per-shard resident-arena bytes that trigger a disk freeze under
    /// [`StorageTier::PackedSpill`] (`None` = 256 MiB). Outcomes are
    /// independent of this knob; it bounds resident memory only.
    pub spill_threshold: Option<usize>,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            crash: CrashModel::default(),
            inputs: None,
            max_states: 5_000_000,
            threads: 1,
            workers_override: None,
            shards_override: None,
            cross_validate_independence: false,
            por: false,
            analysis_id: None,
            storage: StorageTier::Packed,
            max_bytes: None,
            spill_threshold: None,
        }
    }
}

/// Default per-shard spill threshold: freeze a shard's resident arena
/// to disk at 256 MiB.
const DEFAULT_SPILL_THRESHOLD: usize = 256 << 20;

/// Fixed per-entry overhead of the [`ExploreConfig::max_bytes`] cost
/// model, charged on top of each accepted state's packed key length.
const BYTE_COST_OVERHEAD: usize = 16;

/// The deterministic per-state cost charged against
/// [`ExploreConfig::max_bytes`]: a pure function of the key, identical
/// whichever storage tier actually holds it.
#[inline]
fn byte_cost(key: &[u32]) -> usize {
    packed_key_len(key) + BYTE_COST_OVERHEAD
}

/// Diagnostics about how a search actually executed — which engine ran,
/// how wide the frontier pipeline fanned out, whether symmetry reduction
/// was active. Outcomes never depend on any of this; tests use it to
/// assert that forced multi-worker configurations really ran
/// multi-worker (the CI thread matrix used to be silently neutralized on
/// single-core runners).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Whether the parallel frontier engine ran (vs the serial DFS).
    pub frontier: bool,
    /// The largest number of expansion workers any level fanned out to
    /// (`1` means every level ran the fused path, or the serial engine).
    pub max_level_workers: usize,
    /// Number of visited-set shards (0 for the serial engine).
    pub shards: usize,
    /// Whether a non-trivial [`SymmetrySpec`] was active.
    pub symmetry: bool,
    /// Whether partial-order reduction ([`ExploreConfig::por`]) ran.
    pub por: bool,
    /// Which storage tier held the visited set.
    pub storage: StorageTier,
    /// Approximate bytes held by the value interner (structural value
    /// payloads plus per-entry overhead). Deterministic: a pure
    /// function of the interned values.
    pub interned_bytes: usize,
    /// Resident visited-set bytes at search end (accounted model:
    /// arena/index/filter for packed tiers, key words + map overhead
    /// for the flat tier), summed across shards.
    pub table_bytes: usize,
    /// High-water resident visited-set bytes (per-shard peaks summed;
    /// differs from [`table_bytes`](Self::table_bytes) only when the
    /// spill tier froze resident entries to disk).
    pub peak_table_bytes: usize,
    /// Total bytes written to spill runs (0 without the spill tier).
    pub spilled_bytes: usize,
    /// Bits set across the Bloom prefilters (0 without a filter tier).
    pub filter_occupancy: usize,
    /// Bytes held by the compacted witness log (parent links, interned
    /// permutations and parent→child key deltas).
    pub witness_bytes: usize,
}

/// The result of an exhaustive exploration.
///
/// # Verdict precedence
///
/// `Violation` > `Truncated` > `Verified`: a violation is definitive the
/// moment it is found (its schedule replays from the initial state
/// regardless of how much of the space was explored), so it is reported
/// even if the state cap was also hit. `Truncated` means the cap stopped
/// the search *without* a violation having been found — safety of the
/// unexplored remainder is unknown, so `Verified` is never claimed for a
/// capped run. `Verified` is exact: every reachable state (under the
/// configured adversary) was visited.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExploreOutcome {
    /// Every reachable execution satisfies agreement (and validity, if
    /// inputs were declared).
    Verified {
        /// Number of distinct system states visited.
        states: usize,
        /// Number of complete executions (leaves) enumerated, counting
        /// each memoized suffix once.
        leaves: usize,
    },
    /// A safety violation was found; the action sequence reproduces it.
    Violation {
        /// What went wrong.
        kind: ViolationKind,
        /// The schedule that exhibits the violation, from the initial
        /// state.
        schedule: Vec<Action>,
        /// The conflicting outputs observed on that schedule.
        outputs: Vec<Value>,
    },
    /// The state cap was hit before the search completed and no
    /// violation had been found.
    Truncated {
        /// Number of distinct system states visited before giving up.
        states: usize,
    },
}

impl ExploreOutcome {
    /// Whether the outcome proves safety over the explored space.
    pub fn is_verified(&self) -> bool {
        matches!(self, ExploreOutcome::Verified { .. })
    }

    /// Whether a violation was found.
    pub fn is_violation(&self) -> bool {
        matches!(self, ExploreOutcome::Violation { .. })
    }

    /// Whether the state cap stopped the search.
    pub fn is_truncated(&self) -> bool {
        matches!(self, ExploreOutcome::Truncated { .. })
    }
}

/// Which safety property failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// Two outputs differ.
    Agreement,
    /// An output is not among the declared inputs.
    Validity,
}

/// A factory producing the initial system; the model checker clones its
/// output to branch the search.
pub type SystemFactory<'a> = dyn Fn() -> (Memory, Vec<Box<dyn Program>>) + 'a;

/// A factory that additionally declares which process ids are
/// interchangeable (see [`SymmetrySpec`]); consumed by
/// [`explore_symmetric`].
pub type SymmetricSystemFactory<'a> =
    dyn Fn() -> (Memory, Vec<Box<dyn Program>>, SymmetrySpec) + 'a;

/// A copy-on-write shared memory for the search: cell payloads live
/// behind `Arc`s, so branching a state bumps refcounts instead of
/// deep-cloning every register and object state — only the cell a child
/// actually writes is cloned (`Arc::make_mut`), and only while shared.
/// Semantically identical to [`Memory`] (same atomicity, same
/// type-confusion panics).
#[derive(Clone)]
enum CowCell {
    Register(Arc<Value>),
    Object {
        ty: rc_spec::TypeHandle,
        state: Arc<Value>,
    },
}

#[derive(Clone)]
struct CowMemory {
    cells: Vec<CowCell>,
    /// The cell written by the last step, for incremental key updates.
    /// `Program::step` performs at most one shared-memory access, so one
    /// slot suffices; a second write in one step panics (it would make
    /// the incremental keys unsound and the contract is explicit).
    dirty: Option<usize>,
}

impl CowMemory {
    fn from_memory(mem: &Memory) -> Self {
        let cells = (0..mem.len())
            .map(|i| match mem.peek_cell(crate::memory::Addr(i)) {
                Cell::Register(v) => CowCell::Register(Arc::new(v)),
                Cell::Object { ty, state } => CowCell::Object {
                    ty,
                    state: Arc::new(state),
                },
            })
            .collect();
        CowMemory { cells, dirty: None }
    }

    fn value_ref(&self, index: usize) -> &Value {
        match &self.cells[index] {
            CowCell::Register(v) => v,
            CowCell::Object { state, .. } => state,
        }
    }

    fn mark_dirty(&mut self, index: usize) {
        assert!(
            self.dirty.is_none() || self.dirty == Some(index),
            "Program::step performed more than one shared-memory write; \
             the step contract allows at most one access"
        );
        self.dirty = Some(index);
    }

    fn take_dirty(&mut self) -> Option<usize> {
        self.dirty.take()
    }
}

impl MemOps for CowMemory {
    fn read_register(&mut self, addr: crate::memory::Addr) -> Value {
        match &self.cells[addr.0] {
            CowCell::Register(v) => (**v).clone(),
            CowCell::Object { .. } => panic!("{addr} is an object, not a register"),
        }
    }

    fn write_register(&mut self, addr: crate::memory::Addr, value: Value) {
        match &mut self.cells[addr.0] {
            CowCell::Register(v) => *Arc::make_mut(v) = value,
            CowCell::Object { .. } => panic!("{addr} is an object, not a register"),
        }
        self.mark_dirty(addr.0);
    }

    fn read_object(&mut self, addr: crate::memory::Addr) -> Value {
        match &self.cells[addr.0] {
            CowCell::Object { ty, state } => {
                assert!(
                    ty.is_readable(),
                    "type {} is not readable; Read is not available",
                    ty.name()
                );
                (**state).clone()
            }
            CowCell::Register(_) => panic!("{addr} is a register, not an object"),
        }
    }

    fn apply(&mut self, addr: crate::memory::Addr, op: &Operation) -> Value {
        let response = match &mut self.cells[addr.0] {
            CowCell::Object { ty, state } => {
                let t = ty.apply(state, op);
                *Arc::make_mut(state) = t.next;
                t.response
            }
            CowCell::Register(_) => panic!("{addr} is a register, not an object"),
        };
        self.mark_dirty(addr.0);
        response
    }
}

/// Clone-on-write access to one program slot: clones the program only
/// when its `Arc` is shared with sibling states.
fn program_mut(slot: &mut Arc<Box<dyn Program>>) -> &mut dyn Program {
    if Arc::get_mut(slot).is_none() {
        *slot = Arc::new(slot.boxed_clone());
    }
    &mut **Arc::get_mut(slot).expect("just made unique")
}

/// One system state: shared memory, every process's volatile state, the
/// decided flags, crashes used and the first decided value. Cloning is
/// cheap (copy-on-write payloads) — the engine branches by cloning.
#[derive(Clone)]
struct SysState {
    mem: CowMemory,
    programs: Vec<Arc<Box<dyn Program>>>,
    /// Bit `p` set — process `p`'s current run has decided. Packed so
    /// branching clones a word, not a heap vector.
    decided: u64,
    crashes_used: usize,
    decided_value: Option<Value>,
}

impl SysState {
    fn root(mem: Memory, programs: Vec<Box<dyn Program>>) -> Self {
        assert!(
            programs.len() <= 64,
            "the exhaustive checker packs decided flags into a u64; \
             {}-process systems are far beyond exact exploration anyway",
            programs.len()
        );
        SysState {
            mem: CowMemory::from_memory(&mem),
            programs: programs.into_iter().map(Arc::new).collect(),
            decided: 0,
            crashes_used: 0,
            decided_value: None,
        }
    }

    fn is_decided(&self, p: usize) -> bool {
        self.decided & (1 << p) != 0
    }

    /// Every action the adversary may take from this state, in the
    /// engine's canonical order: steps of undecided processes (ascending
    /// pid), then internal-nondeterminism branches (ascending pid, then
    /// choice id — only for processes whose [`Program::choices`] offers
    /// more than one alternative; single-choice processes step through
    /// plain [`Action::Step`]), then legal crashes (matching
    /// [`CrashModel::legal_crashes`], inlined to build one vector). The
    /// order agrees with the `Action` `Ord`, keeping witness selection
    /// deterministic.
    fn enabled_actions(&self, model: &CrashModel) -> Vec<Action> {
        let n = self.programs.len();
        let mut actions: Vec<Action> = Vec::with_capacity(2 * n + 1);
        let mut branches: Vec<Action> = Vec::new();
        for p in (0..n).filter(|&p| !self.is_decided(p)) {
            let choices = self.programs[p].choices();
            if choices.len() <= 1 {
                actions.push(Action::Step(p));
            } else {
                branches.extend(choices.into_iter().map(|c| Action::Branch(p, c)));
            }
        }
        actions.append(&mut branches);
        if !model.exhausted(self.crashes_used) {
            match model.mode {
                crate::crash::CrashMode::Simultaneous => {
                    if model.may_crash_all_mask(self.decided) {
                        actions.push(Action::CrashAll);
                    }
                }
                crate::crash::CrashMode::Independent => {
                    actions.extend(
                        (0..n)
                            .filter(|&p| model.may_crash(self.is_decided(p)))
                            .map(Action::Crash),
                    );
                }
            }
        }
        actions
    }
}

/// Where [`apply_to_child`] gets post-crash program objects from.
trait CrashSource {
    fn crashed(&mut self, parent: &SysState, p: usize) -> Arc<Box<dyn Program>>;
}

/// Step actions never crash anyone; this source is unreachable.
struct NoCrashes;

impl CrashSource for NoCrashes {
    fn crashed(&mut self, _: &SysState, _: usize) -> Arc<Box<dyn Program>> {
        unreachable!("step actions do not crash programs")
    }
}

/// Slot offsets of the flat interned state key:
/// `[cells | program keys | packed decided bits | crashes | decided value
/// | sleep words (POR only)]`.
///
/// Keys are built **incrementally**: a child's key is a copy of its
/// parent's with only the slots the action touched re-interned — the one
/// dirty memory cell (a step performs at most one access), the stepped
/// or crashed program's key, the decided bit, the crash count and the
/// decided value. Unchanged slots keep their parent's ids, which is
/// sound because interned ids are stable and injective.
///
/// With [`ExploreConfig::por`] the key gains trailing **sleep words**
/// holding the node's packed sleep mask raw (never interner ids): node
/// identity under POR is `(state, sleep set)`, the standard fix for
/// sleep sets meeting state memoization — a state re-reached with a
/// different sleep set must be re-explored. POR-off keys are
/// byte-identical to the pre-POR layout.
#[derive(Clone, Copy)]
struct KeyLayout {
    cells: usize,
    n: usize,
    /// Trailing sleep-mask words; `0` when POR is off.
    sleep_words: usize,
}

impl KeyLayout {
    fn of(state: &SysState, por: bool) -> Self {
        let n = state.programs.len();
        KeyLayout {
            cells: state.mem.cells.len(),
            n,
            sleep_words: if por { n.div_ceil(32) } else { 0 },
        }
    }

    fn decided_words(&self) -> usize {
        self.n.div_ceil(32)
    }

    fn prog(&self, p: usize) -> usize {
        self.cells + p
    }

    fn decided_word(&self, p: usize) -> usize {
        self.cells + self.n + p / 32
    }

    fn crashes(&self) -> usize {
        self.cells + self.n + self.decided_words()
    }

    fn decided_value(&self) -> usize {
        self.crashes() + 1
    }

    fn sleep_word(&self, w: usize) -> usize {
        self.decided_value() + 1 + w
    }

    fn len(&self) -> usize {
        self.decided_value() + 1 + self.sleep_words
    }

    /// The node's sleep mask, read back from its key (`0` without POR).
    fn read_sleep(&self, key: &[u32]) -> u64 {
        let mut mask = 0u64;
        for w in 0..self.sleep_words {
            mask |= u64::from(key[self.sleep_word(w)]) << (32 * w);
        }
        mask
    }

    /// Writes `sleep` into the key's sleep words (no-op without POR).
    fn write_sleep(&self, key: &mut [u32], sleep: u64) {
        for w in 0..self.sleep_words {
            key[self.sleep_word(w)] = (sleep >> (32 * w)) as u32;
        }
    }
}

/// Where a pending key slot's value comes from; resolved against the
/// child state with the interner in hand (under the lock, in parallel
/// mode), so no `Value` is ever cloned for key building.
#[derive(Clone, Copy)]
enum Slot {
    Cell(usize),
    Prog(usize),
    DecidedValue,
}

/// A child's key: the patched copy of the parent's key plus the slots
/// still needing the interner.
struct ChildKey {
    key: Vec<u32>,
    pending: Vec<(usize, Slot)>,
}

impl ChildKey {
    /// The root's key: an all-pending template (decided bits and crash
    /// count are zero, which the template already holds).
    fn root(layout: &KeyLayout) -> Self {
        let mut pending = Vec::with_capacity(layout.cells + layout.n + 1);
        pending.extend((0..layout.cells).map(|i| (i, Slot::Cell(i))));
        pending.extend((0..layout.n).map(|p| (layout.prog(p), Slot::Prog(p))));
        pending.push((layout.decided_value(), Slot::DecidedValue));
        ChildKey {
            key: vec![0; layout.len()],
            pending,
        }
    }

    /// Fills the pending slots from `state`, leaving `key` final.
    fn resolve(&mut self, state: &SysState, interner: &mut ValueInterner) -> &[u32] {
        for &(pos, slot) in &self.pending {
            self.key[pos] = match slot {
                Slot::Cell(i) => interner.intern(state.mem.value_ref(i)),
                Slot::Prog(p) => interner.intern(&state.programs[p].state_key()),
                Slot::DecidedValue => match &state.decided_value {
                    Some(v) => interner.intern(v),
                    None => ValueInterner::NONE,
                },
            };
        }
        self.pending.clear();
        &self.key
    }
}

/// Clones `parent` and applies `action`. Returns the child, the cell it
/// wrote (if any) and the value it decided (if any) — `decided_value` is
/// deliberately left at the parent's value so the caller can check the
/// decision against it. Crash branches take the shared post-crash
/// program from `crashed` instead of cloning.
fn apply_to_child(
    parent: &SysState,
    action: Action,
    crashed: &mut dyn CrashSource,
) -> (SysState, Option<usize>, Option<Value>) {
    let mut child = parent.clone();
    let mut newly_decided = None;
    match action {
        Action::Step(p) | Action::Branch(p, _) => {
            let step = match action {
                Action::Branch(_, choice) => {
                    program_mut(&mut child.programs[p]).step_choice(&mut child.mem, choice)
                }
                _ => program_mut(&mut child.programs[p]).step(&mut child.mem),
            };
            if let Step::Decided(v) = step {
                child.decided |= 1 << p;
                newly_decided = Some(v);
            }
        }
        Action::Crash(p) => {
            child.programs[p] = crashed.crashed(parent, p);
            child.decided &= !(1 << p);
            child.crashes_used += 1;
        }
        Action::CrashAll => {
            for p in 0..child.programs.len() {
                child.programs[p] = crashed.crashed(parent, p);
            }
            child.decided = 0;
            child.crashes_used += 1;
        }
    }
    let dirty = child.mem.take_dirty();
    (child, dirty, newly_decided)
}

/// Patches the action-independent raw slots (decided bits, crash count)
/// of a child key already initialized to the parent's key.
fn patch_raw_slots(key: &mut [u32], child: &SysState, action: Action, layout: &KeyLayout) {
    match action {
        Action::Step(p) | Action::Branch(p, _) => {
            if child.is_decided(p) {
                key[layout.decided_word(p)] |= 1 << (p % 32);
            }
        }
        Action::Crash(p) => {
            key[layout.decided_word(p)] &= !(1 << (p % 32));
            key[layout.crashes()] =
                u32::try_from(child.crashes_used).expect("crash budget fits u32");
        }
        Action::CrashAll => {
            for w in 0..layout.decided_words() {
                key[layout.cells + layout.n + w] = 0;
            }
            key[layout.crashes()] =
                u32::try_from(child.crashes_used).expect("crash budget fits u32");
        }
    }
}

/// Checks a fresh decision against the parent's decided value and the
/// validity inputs; on success records it on the child.
fn settle_decision(
    child: &mut SysState,
    newly_decided: Option<Value>,
    inputs: Option<&[Value]>,
) -> Result<bool, (ViolationKind, Vec<Value>)> {
    match newly_decided {
        None => Ok(false),
        Some(v) => {
            // `child.decided_value` still holds the parent's decided
            // value here; the new output is checked against it first.
            if let Some(kind) = check_output(inputs, child.decided_value.as_ref(), &v) {
                return Err((kind, violation_outputs(child.decided_value.as_ref(), v)));
            }
            child.decided_value = Some(v);
            Ok(true)
        }
    }
}

/// The post-crash program objects, one per process, precomputed **once**
/// per search and shared by both engines: [`Program::on_crash`] resets a
/// program to its initial state (input retained — the input never
/// changes across runs), so the reset object and its interned key id are
/// constants whatever state the crash hit. Crash children take a
/// refcount bump and a precomputed id, nothing else, and the frontier
/// engine's expansion workers read the set lock-free. This leans on the
/// same contract the memoization already leans on (`on_crash` resets
/// *everything* volatile; `state_key` is complete).
struct CrashedSet {
    progs: Vec<Arc<Box<dyn Program>>>,
    /// Global interned id of each post-crash program key.
    ids: Vec<u32>,
}

impl CrashedSet {
    fn new(root: &SysState, interner: &mut ValueInterner) -> Self {
        let mut progs = Vec::with_capacity(root.programs.len());
        let mut ids = Vec::with_capacity(root.programs.len());
        for prog in &root.programs {
            let mut fresh = prog.boxed_clone();
            fresh.on_crash();
            ids.push(interner.intern(&fresh.state_key()));
            progs.push(Arc::new(fresh));
        }
        CrashedSet { progs, ids }
    }
}

/// [`CrashSource`] over a precomputed [`CrashedSet`]: crash children
/// take a refcount bump, nothing else.
struct FixedCrashes<'a>(&'a CrashedSet);

impl CrashSource for FixedCrashes<'_> {
    fn crashed(&mut self, _: &SysState, p: usize) -> Arc<Box<dyn Program>> {
        self.0.progs[p].clone()
    }
}

/// A child produced by the parallel expansion phase, awaiting the serial
/// reconciliation passes: its key is fully patched except for values the
/// frozen global interner had not seen (listed in `unresolved` as
/// worker-local ids), and `route` — the shard router, present iff the
/// key is fully resolved — is the [`key_route`] of the resolved key.
struct PendingChild {
    state: SysState,
    key: Vec<u32>,
    /// `(key slot, local id in the producing worker's ShardInterner)`.
    unresolved: Vec<(usize, u32)>,
    /// The destination shard, present iff the key is fully resolved (the
    /// reconciliation pass routes patched keys itself).
    shard: Option<usize>,
    parent: (u32, Action),
    /// The canonicalization permutation applied to this child (`None` =
    /// identity), for the parent link.
    perm: Option<Box<[u8]>>,
}

/// The shard route of a **fully resolved** key: an [`FxHasher`] pass
/// over its words. Sound as a deduplication router because resolved
/// keys are themselves deterministic across runs, thread counts and
/// level paths (fused or staged): global value ids are assigned in
/// first-use order along the canonical frontier order, which no worker
/// count changes — so every duplicate of a state carries the identical
/// resolved key and lands in the identical shard. Keys still holding
/// local-id placeholders are never routed with this (their states are
/// provably new; the serial reconciliation pass patches them and routes
/// the patched key).
fn key_route(key: &[u32]) -> u64 {
    let mut hasher = crate::intern::FxHasher::default();
    for &word in key {
        hasher.write_u32(word);
    }
    hasher.finish()
}

/// The shard a fully resolved key deduplicates in. With a single shard
/// no route is hashed at all — the single-shard configuration (every
/// run on a single-core machine) pays zero routing overhead.
fn shard_for(visited: &ShardedStateTable, key: &[u32]) -> usize {
    if visited.shard_count() == 1 {
        0
    } else {
        visited.shard_of(key_route(key))
    }
}

/// Encodes a worker-local id as a key-slot placeholder: descending from
/// `NONE - 1`, far above any real global id (the interner asserts ids
/// stay below [`ValueInterner::NONE`] and a state space approaching
/// 4 billion distinct *values* is unreachable anyway). The encoding is
/// injective per worker, so scratch keys containing placeholders still
/// deduplicate correctly within a chunk; the value-reconciliation pass
/// overwrites every placeholder with the real global id before any key
/// crosses chunks.
fn local_placeholder(local: u32) -> u32 {
    ValueInterner::NONE - 1 - local
}

/// Resolves one value slot against the frozen global interner, spilling
/// first-seen values into the worker's local interner.
fn resolve_slot(
    pos: usize,
    value: &Value,
    key: &mut [u32],
    unresolved: &mut Vec<(usize, u32)>,
    global: &ValueInterner,
    scratch: &mut ShardInterner,
) {
    match scratch.resolve(global, value) {
        Resolved::Global(id) => key[pos] = id,
        Resolved::Local(local) => {
            key[pos] = local_placeholder(local);
            unresolved.push((pos, local));
        }
    }
}

/// A built child plus its canonicalization permutation (`None` =
/// identity), as returned by [`make_child_serial`].
type SerialChild = (SysState, Option<Box<[u8]>>);

/// A surviving child of [`make_child_frontier`]: state, owned key, its
/// unresolved slots, its destination shard (when routable) and its
/// canonicalization permutation.
type FrontierChild = (
    SysState,
    Vec<u32>,
    Vec<(usize, u32)>,
    Option<usize>,
    Option<Box<[u8]>>,
);

/// The parallel engine's child builder: clones + steps the parent, then
/// patches and resolves the child key **in the reusable `key_scratch`
/// buffer** against the *frozen* global interner. Duplicates are dropped
/// right here, in the worker, paying no allocation beyond the
/// copy-on-write state clone (exactly like the serial engine's probe
/// path):
///
/// * a child already produced by this chunk (`seen_in_chunk`, keyed on
///   the scratch key — placeholder-encoded local ids keep it injective)
///   can never be the canonical-order winner of its state, so dropping
///   it is invisible to the deterministic outcome;
/// * a fully resolved child already present in the (frozen) visited
///   shards is a prior-level duplicate — a key with an unresolved value
///   cannot be, since stored keys only ever hold global ids.
#[allow(clippy::too_many_arguments)]
fn make_child_frontier(
    parent: &SysState,
    parent_key: &[u32],
    action: Action,
    child_sleep: u64,
    layout: &KeyLayout,
    crashes: &CrashedSet,
    global: &ValueInterner,
    scratch: &mut ShardInterner,
    seen_in_chunk: &mut StateTable,
    key_scratch: &mut Vec<u32>,
    visited: &ShardedStateTable,
    inputs: Option<&[Value]>,
    spec: Option<&SymmetrySpec>,
) -> Result<Option<FrontierChild>, (ViolationKind, Vec<Value>)> {
    let (mut child, dirty, newly_decided) = match action {
        Action::Step(_) | Action::Branch(..) => apply_to_child(parent, action, &mut NoCrashes),
        _ => apply_to_child(parent, action, &mut FixedCrashes(crashes)),
    };
    let decided = settle_decision(&mut child, newly_decided, inputs)?;
    key_scratch.clear();
    key_scratch.extend_from_slice(parent_key);
    let key = key_scratch;
    patch_raw_slots(key, &child, action, layout);
    layout.write_sleep(key, child_sleep);
    let mut unresolved: Vec<(usize, u32)> = Vec::new();
    if let Some(cell) = dirty {
        resolve_slot(
            cell,
            child.mem.value_ref(cell),
            key,
            &mut unresolved,
            global,
            scratch,
        );
    }
    match action {
        Action::Step(p) | Action::Branch(p, _) => {
            let prog_key = child.programs[p].state_key();
            resolve_slot(
                layout.prog(p),
                &prog_key,
                key,
                &mut unresolved,
                global,
                scratch,
            );
        }
        Action::Crash(p) => key[layout.prog(p)] = crashes.ids[p],
        Action::CrashAll => {
            for p in 0..layout.n {
                key[layout.prog(p)] = crashes.ids[p];
            }
        }
    }
    if decided {
        let value = child
            .decided_value
            .clone()
            .expect("settle_decision recorded the decision");
        resolve_slot(
            layout.decided_value(),
            &value,
            key,
            &mut unresolved,
            global,
            scratch,
        );
    }
    // Canonicalize before any dedup: the signature ordering is
    // structural, so the representative (and therefore the chunk-local
    // and cross-level dedup behaviour) is worker-count independent even
    // while key slots still hold local placeholder ids — whose
    // *positions* the canonicalization may move, tracked via `moved`.
    let perm = match spec {
        None => None,
        Some(spec) => {
            let mut spec_moved: Vec<(usize, usize)> = Vec::new();
            let perm = canonicalize_child(&mut child, key, layout, spec, Some(&mut spec_moved));
            if perm.is_some() && !unresolved.is_empty() {
                for entry in &mut unresolved {
                    if let Some(&(_, new_pos)) = spec_moved.iter().find(|&&(old, _)| old == entry.0)
                    {
                        entry.0 = new_pos;
                    }
                }
            }
            perm
        }
    };
    let shard = if unresolved.is_empty() {
        // Prior-level duplicates drop before touching the chunk table —
        // no key is boxed for them, matching the serial probe path.
        let shard = shard_for(visited, key);
        if visited.contains(shard, key) {
            return Ok(None);
        }
        Some(shard)
    } else {
        None
    };
    let (_, first_in_chunk) = seen_in_chunk.insert(key);
    if !first_in_chunk {
        return Ok(None);
    }
    Ok(Some((child, key.clone(), unresolved, shard, perm)))
}

/// The serial engine's child builder: the interner is at hand, so the
/// final key is written straight into the reusable `scratch` buffer —
/// children that turn out to be already-visited states allocate nothing
/// beyond the copy-on-write state clone. With a [`SymmetrySpec`] the
/// child is mapped to its canonical representative before the caller
/// probes the visited set; the returned permutation goes on the child's
/// parent link.
#[allow(clippy::too_many_arguments)]
fn make_child_serial(
    parent: &SysState,
    parent_key: &[u32],
    action: Action,
    child_sleep: u64,
    layout: &KeyLayout,
    crashes: &CrashedSet,
    interner: &mut ValueInterner,
    inputs: Option<&[Value]>,
    scratch: &mut Vec<u32>,
    spec: Option<&SymmetrySpec>,
) -> Result<SerialChild, (ViolationKind, Vec<Value>)> {
    let (mut child, dirty, newly_decided) = match action {
        Action::Step(_) | Action::Branch(..) => apply_to_child(parent, action, &mut NoCrashes),
        _ => apply_to_child(parent, action, &mut FixedCrashes(crashes)),
    };
    let decided = settle_decision(&mut child, newly_decided, inputs)?;
    scratch.clear();
    scratch.extend_from_slice(parent_key);
    patch_raw_slots(scratch, &child, action, layout);
    layout.write_sleep(scratch, child_sleep);
    if let Some(cell) = dirty {
        scratch[cell] = interner.intern(child.mem.value_ref(cell));
    }
    match action {
        Action::Step(p) | Action::Branch(p, _) => {
            scratch[layout.prog(p)] = interner.intern(&child.programs[p].state_key());
        }
        Action::Crash(p) => {
            scratch[layout.prog(p)] = crashes.ids[p];
        }
        Action::CrashAll => {
            for p in 0..layout.n {
                scratch[layout.prog(p)] = crashes.ids[p];
            }
        }
    }
    if decided {
        scratch[layout.decided_value()] = match &child.decided_value {
            Some(v) => interner.intern(v),
            None => ValueInterner::NONE,
        };
    }
    let perm = match spec {
        None => None,
        Some(spec) => canonicalize_child(&mut child, scratch, layout, spec, None),
    };
    Ok((child, perm))
}

fn check_output(
    inputs: Option<&[Value]>,
    decided: Option<&Value>,
    v: &Value,
) -> Option<ViolationKind> {
    if let Some(d) = decided {
        if d != v {
            return Some(ViolationKind::Agreement);
        }
    }
    if let Some(inputs) = inputs {
        if !inputs.contains(v) {
            return Some(ViolationKind::Validity);
        }
    }
    None
}

fn violation_outputs(decided: Option<&Value>, v: Value) -> Vec<Value> {
    match decided {
        Some(d) => vec![d.clone(), v],
        None => vec![v],
    }
}

/// One edge of the search tree: the parent node, the action that
/// produced this node **in the parent's canonical coordinates**, and the
/// canonicalization permutation applied to the raw child (`None` =
/// identity). The permutations are what lets witness schedules be
/// reported in original process ids.
struct ParentLink {
    parent: u32,
    action: Action,
    perm: Option<Box<[u8]>>,
}

/// Encodes an [`Action`] into the [`WitnessLog`]'s 12-bit action code:
/// `0` is reserved for the root, `1` is `CrashAll`, steps and crashes
/// interleave from `2` (never exceeding `131` for the asserted `n ≤ 64`
/// processes), and internal-nondeterminism branches pack `(pid, choice)`
/// from `132` up. Choice ids are process-slot-indexed
/// ([`Program::choices`]), so `choice < 61` keeps every branch code
/// within the 12-bit budget (`132 + 63·61 + 60 = 4035 < 4096`).
fn action_code(action: Action) -> u16 {
    match action {
        Action::CrashAll => 1,
        Action::Step(p) => 2 + 2 * u16::try_from(p).expect("pid fits u16"),
        Action::Crash(p) => 3 + 2 * u16::try_from(p).expect("pid fits u16"),
        Action::Branch(p, c) => {
            assert!(
                c < 61,
                "witness action codes pack branch choice ids into 12 bits; \
                 choice id {c} of p{p} exceeds the supported 60"
            );
            132 + 61 * u16::try_from(p).expect("pid fits u16")
                + u16::try_from(c).expect("choice fits u16")
        }
    }
}

/// Decodes a [`WitnessLog`] action code (see [`action_code`]).
fn decode_action(code: u16) -> Action {
    match code {
        0 => unreachable!("action code 0 is the root sentinel"),
        1 => Action::CrashAll,
        c if c >= 132 => Action::Branch(usize::from((c - 132) / 61), usize::from((c - 132) % 61)),
        c if c % 2 == 0 => Action::Step(usize::from((c - 2) / 2)),
        c => Action::Crash(usize::from((c - 3) / 2)),
    }
}

/// Renames an action from canonical coordinates to original pids via the
/// accumulated canonical→original map `m` (`None` = identity). Branch
/// choice ids are process-slot-indexed ([`Program::choices`]), so they
/// rename through the same map as the pids.
fn rename_action(action: Action, m: Option<&[u8]>) -> Action {
    match (m, action) {
        (None, a) => a,
        (Some(m), Action::Step(p)) => Action::Step(m[p] as usize),
        (Some(m), Action::Branch(p, c)) => Action::Branch(m[p] as usize, m[c] as usize),
        (Some(m), Action::Crash(p)) => Action::Crash(m[p] as usize),
        (Some(_), Action::CrashAll) => Action::CrashAll,
    }
}

/// Accumulates one edge's canonicalization into the canonical→original
/// map: `m ∘ π`, with `None` as the identity on either side.
fn compose_perm(m: Option<Box<[u8]>>, pi: Option<&[u8]>) -> Option<Box<[u8]>> {
    match (m, pi) {
        (m, None) => m,
        (None, Some(pi)) => Some(Box::from(pi)),
        (Some(m), Some(pi)) => Some(canon::compose(&m, pi)),
    }
}

/// Walks the witness log back to the root, returning the action
/// sequence that reaches node `idx` from the initial state **in
/// original process ids**, plus the accumulated canonical→original pid
/// map at `idx` (for renaming one further action taken from that node).
///
/// Reconstruction runs root-down: starting from the root
/// canonicalization, each stored action is renamed through the map
/// accumulated *before* its edge, and each edge's permutation is then
/// composed in. Without symmetry every permutation is `None` and this
/// degenerates to the plain parent-link walk. The log is append-only
/// and self-contained, so reconstruction works even after the frontier
/// engine dropped the in-RAM nodes of earlier levels and the visited
/// set spilled to disk.
fn schedule_to(
    witness: &WitnessLog,
    root_perm: Option<&[u8]>,
    idx: u32,
) -> (Vec<Action>, Option<Box<[u8]>>) {
    let mut path: Vec<(u16, Option<&[u8]>)> = Vec::new();
    let mut at = idx;
    while let Some((parent, code, perm)) = witness.link(at) {
        path.push((code, perm));
        at = parent;
    }
    path.reverse();
    let mut m = root_perm.map(Box::from);
    let mut schedule = Vec::with_capacity(path.len());
    for (code, perm) in path {
        schedule.push(rename_action(decode_action(code), m.as_deref()));
        m = compose_perm(m, perm);
    }
    (schedule, m)
}

/// The running account charged against [`ExploreConfig::max_bytes`]:
/// every accepted state adds [`byte_cost`] of its resolved key, in
/// canonical acceptance order. Storage-tier- and
/// thread-count-independent by construction, so a byte-capped search
/// truncates at the identical state everywhere.
struct ByteBudget {
    cap: Option<usize>,
    accepted: usize,
}

impl ByteBudget {
    fn new(cap: Option<usize>) -> Self {
        ByteBudget { cap, accepted: 0 }
    }

    /// Charges one accepted state's cost; `true` means the cap would be
    /// exceeded (the state must be rejected and the search truncated —
    /// nothing is charged).
    fn charge(&mut self, key: &[u32]) -> bool {
        let Some(cap) = self.cap else {
            return false;
        };
        let cost = byte_cost(key);
        if self.accepted + cost > cap {
            return true;
        }
        self.accepted += cost;
        false
    }
}

/// Validates a [`SymmetrySpec`] against the system's initial state: the
/// orbit condition (see the `canon` module docs) requires every orbit's
/// members to start with identical program objects — asserted through
/// equal root [`Program::state_key`]s, the same completeness contract
/// the memoization relies on.
///
/// Declared **owned cells** are additionally validated here, at search
/// start, so an unsound declaration can never corrupt a search:
///
/// * the owned lists of one orbit's members correspond (equal lengths);
/// * every owned cell is a real cell of this system's memory;
/// * the root is stabilized: an orbit's owned cells hold equal values
///   position-for-position across its members;
/// * the **owner-only rule**: a cell owned by a process of an acting
///   orbit is referenced by no other process — checked against the
///   **analyzed footprint** ([`crate::footprint::analyze_system`],
///   computed by the entry points) when the analysis converges, else
///   against the hand-written [`Program::referenced_cells`], and
///   rejected outright when neither is available (soundness cannot be
///   established, so it is not assumed);
/// * when both are available, the hand-written declaration must
///   **cover** the analyzed footprint — an under-declaration would have
///   silently weakened exactly this validation;
/// * every owning member of an acting orbit really supports
///   [`Program::rebind`] (probed with the identity map, which must also
///   preserve [`Program::state_key`]) — a rebind-less program would
///   otherwise panic mid-search, at the first non-identity
///   canonicalization.
fn validate_symmetry(root: &SysState, spec: &SymmetrySpec, analyzed: Option<&SystemFootprint>) {
    assert_eq!(
        spec.n(),
        root.programs.len(),
        "SymmetrySpec describes {} processes but the system has {}",
        spec.n(),
        root.programs.len()
    );
    for pids in spec.acting_orbits() {
        let first = pids[0];
        let first_key = root.programs[first].state_key();
        for &p in &pids[1..] {
            assert_eq!(
                root.programs[p].state_key(),
                first_key,
                "symmetry orbit {pids:?} groups processes with different \
                 initial states (p{first} vs p{p}); orbit members must run \
                 the same program with the same input"
            );
        }
    }
    spec.validate_owned_shape();
    if spec.has_moving_owned_cells() {
        validate_owned_cells(root, spec, analyzed);
    }
    if spec.has_moving_scalarsets() {
        validate_scalarset_cells(root, spec);
    }
    // Orbit reference consistency (best-effort, when enumerable): two
    // members of one orbit must reference the *same* cells outside
    // their own owned lists. A per-process distinguishing cell that is
    // not declared owned makes orbit weights wrong — the arrangements
    // the multinomial counts would not all be reachable states of one
    // canonical class — so the declaration is rejected rather than
    // silently miscounting. Programs without `referenced_cells` keep
    // the pre-rebind status quo: the factory contract vouches for them.
    for pids in spec.acting_orbits() {
        let mut reference: Option<(Pid, std::collections::BTreeSet<crate::memory::Addr>)> = None;
        for &p in pids {
            let Some(refs) = root.programs[p].referenced_cells() else {
                continue;
            };
            let shared: std::collections::BTreeSet<crate::memory::Addr> = refs
                .into_iter()
                .filter(|c| !spec.owned(p).contains(c))
                .collect();
            match &reference {
                None => reference = Some((p, shared)),
                Some((q, expected)) => assert_eq!(
                    &shared, expected,
                    "symmetry orbit {pids:?}: p{q} and p{p} reference \
                     different shared cells outside their owned lists; \
                     per-process cells must be declared owned \
                     (SymmetrySpec::with_owned_cells) or the processes \
                     kept in separate orbits"
                ),
            }
        }
    }
}

/// The owned-cell half of [`validate_symmetry`]: in-range addresses,
/// root stabilization, rebind support and the owner-only reference
/// rule (analyzed-footprint-first; see [`validate_symmetry`]).
fn validate_owned_cells(root: &SysState, spec: &SymmetrySpec, analyzed: Option<&SystemFootprint>) {
    let cells = root.mem.cells.len();
    // Root stabilization: owned contents equal across each orbit.
    for pids in spec.acting_orbits() {
        let first = pids[0];
        for &p in pids {
            for &cell in spec.owned(p) {
                assert!(
                    cell.index() < cells,
                    "owned cell {cell} of p{p} is outside this system's \
                     memory ({cells} cells)"
                );
            }
        }
        for &p in &pids[1..] {
            for (k, (&a, &b)) in spec.owned(first).iter().zip(spec.owned(p)).enumerate() {
                assert_eq!(
                    root.mem.value_ref(a.index()),
                    root.mem.value_ref(b.index()),
                    "symmetry orbit {pids:?}: owned cells at position {k} \
                     ({a} of p{first}, {b} of p{p}) differ at the root; the \
                     orbit group must stabilize the initial state"
                );
            }
        }
    }
    // The owner-only rule, checked against the analyzed footprint when
    // the analysis converged, else against the hand-written
    // `referenced_cells`. One of the two must be available — an unknown
    // reference set could hide a cross-reference, so the declaration is
    // rejected rather than trusted.
    let moving: Vec<(crate::memory::Addr, Pid)> = spec
        .acting_orbits()
        .flat_map(|pids| pids.iter().copied())
        .flat_map(|p| spec.owned(p).iter().map(move |&c| (c, p)))
        .collect();
    for (p, prog) in root.programs.iter().enumerate() {
        let declared = prog.referenced_cells();
        if let (Some(fp), Some(declared)) = (analyzed, &declared) {
            // A declaration that misses an analyzed access would have
            // silently weakened this very validation — hard error.
            for (&cell, modes) in &fp.per_process[p].cells {
                assert!(
                    declared.contains(&cell),
                    "p{p} under-declares referenced_cells: the footprint \
                     analysis observes an access to cell {cell} ({}) that \
                     the declaration omits (rule: referenced_cells must \
                     cover every cell the process may access)",
                    modes.label()
                );
            }
        }
        let refs = analyzed
            .map(|fp| fp.per_process[p].accessed())
            .or(declared)
            .unwrap_or_else(|| {
                panic!(
                    "owned cells are declared but process p{p} does not \
                     enumerate its referenced cells \
                     (Program::referenced_cells returned None) and the \
                     footprint analysis did not converge; the owner-only \
                     soundness rule cannot be validated, so the declaration \
                     is rejected"
                )
            });
        for &(cell, owner) in &moving {
            assert!(
                owner == p || !refs.contains(&cell),
                "cell {cell} is owned by p{owner} but referenced by p{p}; \
                 owned cells permute with their owners, so a cell may be \
                 accessed only by the process that owns it (Fig. 4-style \
                 global scans of per-process registers are outside the \
                 sound fragment — see DESIGN.md §3)"
            );
        }
    }
    // Rebind support: canonicalization will call `Program::rebind` on
    // every relocated owner, so probe it up front (identity map on a
    // clone) — a rebind-less program must be rejected here, at search
    // start, not at the first non-identity permutation deep in a
    // search. Probed last: a declaration that already violates the
    // owner-only rule gets the semantic rejection above, not this
    // mechanical one.
    for pids in spec.acting_orbits() {
        for &p in pids {
            if spec.owned(p).is_empty() {
                continue;
            }
            let mut probe = root.programs[p].boxed_clone();
            let identity = Rebinding::identity(cells);
            if crate::footprint::quiet_probe(|| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| probe.rebind(&identity)))
            })
            .is_err()
            {
                panic!(
                    "p{p} declares owned cells but its Program does not \
                     support address rebinding (Program::rebind panicked on \
                     the identity map); implement rebind for it, or drop the \
                     owned-cell declaration — `rc_runtime::lint_system` / \
                     `tables lint` derive sound owned-cell candidates"
                );
            }
            assert_eq!(
                probe.state_key(),
                root.programs[p].state_key(),
                "p{p}: Program::rebind changed the state_key under the \
                 identity map; addresses are identity, not volatile state"
            );
        }
    }
}

/// The scalarset half of [`validate_symmetry`]: in-range addresses,
/// root stabilization across each acting orbit, and rebind support for
/// every orbit member (family permutation rebinds relocated programs
/// even when they own no cells). The *semantic* soundness of permuting
/// a family — the order-insensitive fold property — is established by
/// the scalarset certificate in [`prepare_analysis`], not here.
fn validate_scalarset_cells(root: &SysState, spec: &SymmetrySpec) {
    let cells = root.mem.cells.len();
    for (f, family) in spec.scalarset_families().iter().enumerate() {
        for (p, &cell) in family.iter().enumerate() {
            assert!(
                cell.index() < cells,
                "scalarset family {f}: cell {cell} (position {p}) is \
                 outside this system's memory ({cells} cells)"
            );
        }
    }
    for pids in spec.acting_orbits() {
        let first = pids[0];
        for &p in &pids[1..] {
            for (f, family) in spec.scalarset_families().iter().enumerate() {
                assert_eq!(
                    root.mem.value_ref(family[first].index()),
                    root.mem.value_ref(family[p].index()),
                    "scalarset family {f}: cells {} (p{first}) and {} (p{p}) \
                     differ at the root; the orbit group must stabilize the \
                     initial state",
                    family[first],
                    family[p]
                );
            }
        }
        for &p in pids {
            let mut probe = root.programs[p].boxed_clone();
            let identity = Rebinding::identity(cells);
            if crate::footprint::quiet_probe(|| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| probe.rebind(&identity)))
            })
            .is_err()
            {
                panic!(
                    "a scalarset family spans p{p}'s orbit but its Program \
                     does not support address rebinding (Program::rebind \
                     panicked on the identity map); canonicalization rebinds \
                     every relocated member, so implement rebind or drop the \
                     scalarset declaration"
                );
            }
            assert_eq!(
                probe.state_key(),
                root.programs[p].state_key(),
                "p{p}: Program::rebind changed the state_key under the \
                 identity map; addresses are identity, not volatile state"
            );
        }
    }
}

/// Footprint-analysis artifacts, computed by the public entry points
/// (which still hold the factory's `Memory` and programs — the engines
/// only ever see the copy-on-write root) and threaded into the engines:
/// the analyzed footprint feeds [`validate_symmetry`], the independence
/// relation the dynamic cross-validation.
#[derive(Default)]
struct AnalysisCtx {
    footprint: Option<SystemFootprint>,
    independence: Option<StaticIndependence>,
    /// The per-local-state analysis backing POR, present iff
    /// [`ExploreConfig::por`] is set (setup panics when the system is
    /// ineligible — see [`ExploreConfig::por`]).
    por: Option<Arc<SystemAnalysis>>,
}

/// Runs the footprint analysis when this search needs it: always when
/// [`ExploreConfig::por`] or
/// [`ExploreConfig::cross_validate_independence`] ask for it (analysis
/// failure is then a panic — an explicit request must not silently
/// no-op), and for owned-cell symmetry validation (failure there falls
/// back to the hand-written `referenced_cells` declarations, the
/// pre-analyzer status quo). POR additionally requires acyclic step
/// graphs and — under symmetry — equivariant per-state footprints
/// across every orbit; both are enforced here, at search start.
fn prepare_analysis(
    mem: &Memory,
    programs: &[Box<dyn Program>],
    config: &ExploreConfig,
    spec: Option<&SymmetrySpec>,
) -> AnalysisCtx {
    let wants_validation = spec.is_some_and(|s| !s.is_trivial() && s.has_moving_owned_cells());
    let mut ctx = AnalysisCtx::default();
    if let Some(spec) = spec.filter(|s| s.has_moving_scalarsets()) {
        // Scalarset families are permuted only under a clean
        // equivariance certificate — soundness is linted, not assumed.
        let cert = crate::scalarset::certify_scalarsets_cached(
            config.analysis_id.as_deref(),
            mem,
            programs,
            spec,
            AnalysisBudget::default(),
        );
        if !cert.is_certified() {
            panic!(
                "the declared scalarset families are not certified \
                 order-insensitive; refusing to permute them:\n  {}",
                cert.errors.join("\n  ")
            );
        }
    }
    if config.por {
        let analysis = match config.analysis_id.as_deref() {
            Some(id) => system_analysis_cached(id, mem, programs, AnalysisBudget::default()),
            None => analyze_system_states(mem, programs, AnalysisBudget::default()).map(Arc::new),
        };
        let analysis = analysis.unwrap_or_else(|e| {
            panic!("ExploreConfig::por is set but the footprint analysis failed: {e}")
        });
        assert!(
            analysis.step_graphs_acyclic(),
            "ExploreConfig::por is set but a process's step graph is \
             cyclic; the per-state future footprints of a spinning \
             process are not grounded in termination, so POR is refused \
             for this system (lint_ample reports which process)"
        );
        if let Some(spec) = spec.filter(|s| !s.is_trivial()) {
            if spec.has_moving_scalarsets() {
                // The pairwise owned-cell rename below cannot express a
                // cross-read family: at a mid-scan key the immediate
                // sets are identical *unrenamed* across members, while
                // own-position accesses need the rename — one map
                // cannot serve both. The scalarset certificate (checked
                // above) subsumes this: its member-exchange and rebind
                // fidelity checks prove the per-slot tables stay valid
                // after relocation.
            } else if let Err(e) = check_por_equivariance(&analysis, spec) {
                panic!("ExploreConfig::por with symmetry: {e}");
            }
        }
        ctx.footprint = Some(analysis.footprint.clone());
        ctx.por = Some(analysis);
    }
    if !config.cross_validate_independence && !wants_validation {
        return ctx;
    }
    if ctx.footprint.is_none() {
        match analyze_system(mem, programs, true, AnalysisBudget::default()) {
            Ok(footprint) => ctx.footprint = Some(footprint),
            Err(e) if config.cross_validate_independence => panic!(
                "cross_validate_independence is set but the footprint \
                 analysis failed: {e}"
            ),
            Err(_) => return ctx,
        }
    }
    if config.cross_validate_independence {
        ctx.independence = ctx
            .footprint
            .as_ref()
            .map(StaticIndependence::from_footprint);
    }
    ctx
}

/// Checks that the per-local-state footprints are **equivariant** across
/// every acting orbit of `spec`: orbit members must memoize the same
/// `(state_key, decided)` local states, and each state's access sets
/// must agree modulo the renaming that swaps the two members' owned
/// cells position-for-position. Canonicalization relocates programs
/// between orbit slots, so the POR engine looks a relocated program's
/// state up in the *destination* slot's map — equivariance is exactly
/// what makes that lookup yield the relocated process's true footprint.
/// Checked for the transposition of each member with the orbit's first
/// (transpositions generate the orbit's symmetric group).
fn check_por_equivariance(analysis: &SystemAnalysis, spec: &SymmetrySpec) -> Result<(), String> {
    let bits = analysis.cells + 1;
    for pids in spec.acting_orbits() {
        let first = pids[0];
        for &p in &pids[1..] {
            // The transposition (first p) on cell indices: identity
            // except the two members' owned cells, swapped
            // position-for-position; the decision pseudo-cell is fixed.
            let mut rename: Vec<usize> = (0..bits).collect();
            for (&a, &b) in spec.owned(first).iter().zip(spec.owned(p)) {
                rename[a.index()] = b.index();
                rename[b.index()] = a.index();
            }
            let (ma, mb) = (&analysis.per_process[first], &analysis.per_process[p]);
            if ma.infos.len() != mb.infos.len() {
                return Err(format!(
                    "orbit {pids:?}: p{first} memoizes {} local states but \
                     p{p} memoizes {}; the per-state footprint maps are \
                     not equivariant, so POR cannot compose with this \
                     symmetry",
                    ma.infos.len(),
                    mb.infos.len()
                ));
            }
            for info in &ma.infos {
                let Some(other) = mb.lookup(&info.key, info.decided) else {
                    return Err(format!(
                        "orbit {pids:?}: p{first} memoizes a local state \
                         p{p} never reaches; the per-state footprint maps \
                         are not equivariant, so POR cannot compose with \
                         this symmetry"
                    ));
                };
                let pairs = [
                    ("imm_accessed", &info.imm_accessed, &other.imm_accessed),
                    ("imm_mutated", &info.imm_mutated, &other.imm_mutated),
                    (
                        "future_accessed",
                        &info.future_accessed,
                        &other.future_accessed,
                    ),
                    (
                        "future_mutated",
                        &info.future_mutated,
                        &other.future_mutated,
                    ),
                ];
                for (label, a, b) in pairs {
                    if !renamed_equal(a, b, &rename) {
                        return Err(format!(
                            "orbit {pids:?}: p{first} and p{p} disagree on \
                             {label} of a shared local state (modulo the \
                             owned-cell renaming); the per-state footprint \
                             maps are not equivariant, so POR cannot \
                             compose with this symmetry"
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Whether `rename` maps `a` exactly onto `b` (`rename` is a bijection
/// on bit indices, so image inclusion plus equal cardinality suffices).
fn renamed_equal(a: &CellSet, b: &CellSet, rename: &[usize]) -> bool {
    let mut len_a = 0usize;
    for bit in a.iter() {
        len_a += 1;
        if !b.contains(rename[bit]) {
            return false;
        }
    }
    len_a == b.iter().count()
}

/// The per-search partial-order reduction engine: the per-local-state
/// footprint analysis re-keyed by **interned** program-state ids, so the
/// hot expansion path looks footprints up by the `u32` already in the
/// node key instead of rebuilding `Value` state keys.
struct PorEngine {
    analysis: Arc<SystemAnalysis>,
    /// Per process: interned `state_key` id → index into that process's
    /// `infos`, for **undecided** states only (enabled steps belong to
    /// undecided processes; decided states never need a lookup).
    by_id: Vec<HashMap<u32, usize>>,
}

impl PorEngine {
    /// Builds the engine, interning every analyzed state key in a fixed
    /// order (pid-major, discovery order). Both engines construct this
    /// at the same point — right after [`CrashedSet::new`] — so value
    /// ids, and therefore every node key, stay identical across engines
    /// and thread counts.
    fn new(analysis: Arc<SystemAnalysis>, interner: &mut ValueInterner) -> Self {
        let by_id = analysis
            .per_process
            .iter()
            .map(|map| {
                let mut ids = HashMap::new();
                for (i, info) in map.infos.iter().enumerate() {
                    let id = interner.intern(&info.key);
                    if !info.decided {
                        ids.insert(id, i);
                    }
                }
                ids
            })
            .collect();
        PorEngine { analysis, by_id }
    }

    /// The analyzed footprints of process `p`'s current (undecided)
    /// local state, by the interned key id from the node key. A
    /// reachable state the analysis never memoized means the analyzer
    /// under-approximated the state space — unsound, so panic.
    fn info(&self, p: usize, id: u32) -> &LocalStateInfo {
        let idx = self.by_id[p].get(&id).unwrap_or_else(|| {
            panic!(
                "POR: process p{p} reached a local state the footprint \
                 analysis never memoized; the analyzer is unsound for \
                 this system"
            )
        });
        &self.analysis.per_process[p].infos[*idx]
    }
}

/// Expands one node under the optional POR engine: returns the child
/// actions — each paired with the **sleep mask** its child node will
/// carry — plus whether the node is terminal (no enabled action at all:
/// a complete execution). Without POR every enabled action is returned
/// with an empty mask.
///
/// With POR, at a crash-free node (any enabled crash forces full
/// expansion — crashes conflict with everything, which keeps every
/// [`CrashModel`] adversary complete; crash-freedom is hereditary along
/// step edges, so sleep sets only ever form below crash-free nodes):
///
/// * the **persistent set** is the first singleton `{p}` (ascending
///   pid) whose immediate step is statically independent of everything
///   the other undecided processes can ever do — `imm_mutated(p)`
///   disjoint from their crash-free `future_accessed`, their
///   `future_mutated` disjoint from `imm_accessed(p)`, with the
///   decision pseudo-cell making any two possibly-deciding steps
///   conflict — else all enabled steps;
/// * the node's own sleep set `Z` (read from its key) drops members
///   whose subtrees a sibling already covers;
/// * each expanded child inherits the sleeping pids that remain
///   immediately independent of the step taken, plus its
///   already-expanded siblings — classic sleep-set propagation, in
///   ascending pid order so the set is engine- and thread-count
///   deterministic.
///
/// An empty action list with `terminal == false` is a fully pruned
/// node: visited and counted, but **not** a leaf and expanding nothing.
fn expand_actions(
    state: &SysState,
    key: &[u32],
    layout: &KeyLayout,
    model: &CrashModel,
    por: Option<&PorEngine>,
) -> (Vec<(Action, u64)>, bool) {
    let enabled = state.enabled_actions(model);
    let terminal = enabled.is_empty();
    let Some(por) = por else {
        return (enabled.into_iter().map(|a| (a, 0)).collect(), terminal);
    };
    let sleep = layout.read_sleep(key);
    debug_assert_eq!(
        sleep & state.decided,
        0,
        "a sleeping process is undecided by construction"
    );
    if terminal {
        // A sleeping process stays enabled (nobody else decides it, and
        // crash-free nodes stay crash-free), so terminals carry Z = ∅
        // and POR counts exactly the unreduced leaves.
        assert_eq!(sleep, 0, "terminal node carries a sleep set");
        return (Vec::new(), true);
    }
    if enabled
        .iter()
        .any(|a| matches!(a, Action::Crash(_) | Action::CrashAll))
    {
        // Crash-enabled: full expansion, and the sleep set is provably
        // empty — a node with a non-empty sleep set descends from a
        // crash-free node through step edges only, and crash-freedom is
        // hereditary along steps (the budget never recovers, decided
        // bits only get set).
        assert_eq!(sleep, 0, "crash-enabled node carries a sleep set");
        return (enabled.into_iter().map(|a| (a, 0)).collect(), terminal);
    }
    // POR reasons per **process**: a pid's internal alternatives
    // (several `Branch` actions) share one footprint entry — the
    // analyzer unions immediate sets over all choices — and are either
    // all expanded or all covered by a sibling subtree together.
    let mut per_pid: Vec<(usize, Vec<Action>)> = Vec::new();
    for &a in &enabled {
        let p = match a {
            Action::Step(p) | Action::Branch(p, _) => p,
            _ => unreachable!("crash-free node"),
        };
        match per_pid.last_mut() {
            Some((q, list)) if *q == p => list.push(a),
            _ => per_pid.push((p, vec![a])),
        }
    }
    per_pid.sort_by_key(|&(p, _)| p);
    let steps: Vec<usize> = per_pid.iter().map(|&(p, _)| p).collect();
    let infos: Vec<&LocalStateInfo> = steps
        .iter()
        .map(|&p| por.info(p, key[layout.prog(p)]))
        .collect();
    // The persistent set: the first singleton that no other process can
    // ever conflict with, else every enabled step. The future sets are
    // the crash-free ones — sound precisely because this node is
    // crash-free and stays so along every step-only continuation.
    let persistent: Vec<usize> = (0..steps.len())
        .find(|&i| {
            infos.iter().enumerate().all(|(j, other)| {
                j == i
                    || (infos[i].imm_mutated.is_disjoint(&other.future_accessed)
                        && other.future_mutated.is_disjoint(&infos[i].imm_accessed))
            })
        })
        .map_or_else(|| (0..steps.len()).collect(), |i| vec![i]);
    let mut out: Vec<(Action, u64)> = Vec::with_capacity(persistent.len());
    // Sleep bits are pure pruning, so propagating fewer is always
    // sound. At a node where some process is mid-branch (several
    // enabled `Branch` alternatives), propagating them is also a net
    // loss: the choice diamonds below are collapsed by the memo table
    // anyway, while a nonzero sleep mask in the child's node key splits
    // every memoized state it reaches — measured on the Fig. 4
    // branching scan, that splitting costs more states than the sleep
    // pruning saves, and suppressing it here restores the persistent-set
    // reduction (E17's scalarset+por composition). Deterministic nodes
    // keep classic sleep-set propagation unchanged.
    let branching = per_pid.iter().any(|(_, list)| list.len() > 1);
    // `Z ∪ {already-expanded siblings}`: a pid's bit joins as its
    // subtree is scheduled, so later siblings may sleep on it.
    let mut cover = sleep;
    for &i in &persistent {
        let p = steps[i];
        if sleep >> p & 1 != 0 {
            continue; // asleep: a sibling subtree covers this step
        }
        let mut child_sleep = 0u64;
        for (j, &r) in steps.iter().enumerate() {
            if r == p || cover >> r & 1 == 0 || branching {
                continue;
            }
            let imm_independent = infos[j].imm_mutated.is_disjoint(&infos[i].imm_accessed)
                && infos[i].imm_mutated.is_disjoint(&infos[j].imm_accessed);
            if imm_independent {
                child_sleep |= 1 << r;
            }
        }
        for &action in &per_pid[i].1 {
            out.push((action, child_sleep));
        }
        cover |= 1 << p;
    }
    (out, false)
}

/// Asserts that every pair of enabled steps the static relation calls
/// independent really commutes *from this state*: both orders must
/// produce identical memory, identical state keys for both processes,
/// identical decided flags and identical decisions. Called once per
/// expanded node when
/// [`ExploreConfig::cross_validate_independence`] is set; pure, so the
/// frontier workers run it concurrently without coordination.
fn cross_validate_node(state: &SysState, indep: &StaticIndependence) {
    let n = state.programs.len();
    // Every step-like action of each undecided process: one `Step` for
    // deterministic local states, one `Branch` per choice for
    // nondeterministic ones (a scalarset scan mid-mask). Independence is
    // per *process*, so every cross-pid action pair must commute.
    let per_pid: Vec<(usize, Vec<Action>)> = (0..n)
        .filter(|&p| !state.is_decided(p))
        .map(|p| {
            let choices = state.programs[p].choices();
            let acts = if choices.len() <= 1 {
                vec![Action::Step(p)]
            } else {
                choices.into_iter().map(|c| Action::Branch(p, c)).collect()
            };
            (p, acts)
        })
        .collect();
    for (i, (p, p_acts)) in per_pid.iter().enumerate() {
        let (p, q_list) = (*p, &per_pid[i + 1..]);
        for (q, q_acts) in q_list {
            let q = *q;
            if !indep.are_independent(p, q) {
                continue;
            }
            for &pa in p_acts {
                for &qa in q_acts {
                    let both = |a: Action, b: Action| {
                        let (mid, _, da) = apply_to_child(state, a, &mut NoCrashes);
                        let (end, _, db) = apply_to_child(&mid, b, &mut NoCrashes);
                        (end, da, db)
                    };
                    let (pq, p_first, q_second) = both(pa, qa);
                    let (qp, q_first, p_second) = both(qa, pa);
                    let explain = "statically-independent enabled steps must \
                                   commute; the footprint analysis is unsound for \
                                   this system";
                    assert_eq!(
                        p_first, p_second,
                        "p{p}'s step outcome depends on whether p{q} stepped first; {explain}"
                    );
                    assert_eq!(
                        q_first, q_second,
                        "p{q}'s step outcome depends on whether p{p} stepped first; {explain}"
                    );
                    assert_eq!(pq.decided, qp.decided, "steps p{p}/p{q}: {explain}");
                    for who in [p, q] {
                        assert_eq!(
                            pq.programs[who].state_key(),
                            qp.programs[who].state_key(),
                            "p{who}'s local state differs between step orders \
                             p{p};p{q} and p{q};p{p}; {explain}"
                        );
                    }
                    for cell in 0..pq.mem.cells.len() {
                        assert_eq!(
                            pq.mem.value_ref(cell),
                            qp.mem.value_ref(cell),
                            "cell @{cell} differs between step orders p{p};p{q} \
                             and p{q};p{p}; {explain}"
                        );
                    }
                }
            }
        }
    }
}

/// Maps `child` (and its key, resolved or placeholder-carrying) to its
/// canonical representative under `spec`'s orbit permutations. Program
/// slots and decided bits move together; declared **owned cells** move
/// with their owners and the relocated programs are rebound
/// ([`Program::rebind`]) to their destination slots' cells — undeclared
/// shared memory never moves (see the `canon` module docs for the
/// soundness argument and the owner-only reference rule). The signature
/// ordering is **structural** (state-key values and owned-cell `Value`s,
/// never interner ids), so the representative choice is identical across
/// engines, runs and thread counts — including in frontier workers whose
/// keys still hold worker-local placeholder ids.
///
/// Returns the permutation applied (`perm[i]` = source slot of canonical
/// slot `i`), or `None` if the state was already canonical. When `moved`
/// is given, every relocated key position — program slots *and* owned
/// cells — is recorded as `(old_pos, new_pos)` so the caller can remap
/// pending unresolved slots.
fn canonicalize_child(
    child: &mut SysState,
    key: &mut [u32],
    layout: &KeyLayout,
    spec: &SymmetrySpec,
    mut moved: Option<&mut Vec<(usize, usize)>>,
) -> Option<Box<[u8]>> {
    let scalarsets = spec.has_moving_scalarsets();
    if scalarsets && child.programs.iter().any(|p| p.scalarset_pinned()) {
        // A pinned program references scalarset family members
        // *positionally* (a mid-scan mask of checked positions);
        // permuting the family under it would dangle those references.
        // Identity is always sound — pinned states simply forgo
        // reduction, and the certifier guarantees the states that carry
        // leaf weights (decided ones) are never pinned.
        return None;
    }
    // The sleep bit joins the signature (constant `false` with POR off,
    // so ties — and therefore representative choices — are unchanged):
    // under POR, node identity is `(state, sleep set)`, and the mask
    // permutes with its processes exactly like the decided bits.
    let sleep = layout.read_sleep(key);
    let perm = spec.canonical_perm_with(|p| {
        // Owned-cell values are part of the signature: the permutation
        // moves them, so the sort must be total over them (two members
        // with equal program keys but different owned contents are
        // *different* payloads). Slots-only specs own nothing and pay
        // only an empty-Vec comparison. Scalarset family cells move with
        // the slots exactly like owned cells, so their values join the
        // signature the same way.
        let owned: Vec<&Value> = spec
            .owned(p)
            .iter()
            .map(|&a| child.mem.value_ref(a.index()))
            .collect();
        let family: Vec<&Value> = if scalarsets {
            spec.scalarset_cells(p)
                .map(|a| child.mem.value_ref(a.index()))
                .collect()
        } else {
            Vec::new()
        };
        (
            child.programs[p].state_key(),
            child.is_decided(p),
            sleep >> p & 1 != 0,
            owned,
            family,
        )
    })?;
    // Gather every moved payload before writing anything: a slot may be
    // both a source and a destination within one orbit rotation.
    let mut progs: Vec<(usize, Arc<Box<dyn Program>>)> = Vec::new();
    let mut slots: Vec<(usize, usize, u32)> = Vec::new(); // (old, new, value)
    let mut cells: Vec<(usize, usize, CowCell, u32)> = Vec::new(); // (old, new, content, value)
    let mut decided = child.decided;
    // Built lazily on the first owned-cell move: most canonicalizations
    // of slots-only specs (and moves confined to cell-less orbits) never
    // pay the O(cells) identity allocation.
    let mut rebinding: Option<Rebinding> = None;
    for (i, &src) in perm.iter().enumerate() {
        let src = src as usize;
        if src == i {
            continue;
        }
        progs.push((i, child.programs[src].clone()));
        decided = (decided & !(1 << i)) | ((child.decided >> src & 1) << i);
        slots.push((layout.prog(src), layout.prog(i), key[layout.prog(src)]));
        for (k, &dst_cell) in spec.owned(i).iter().enumerate() {
            let src_cell = spec.owned(src)[k];
            cells.push((
                src_cell.index(),
                dst_cell.index(),
                child.mem.cells[src_cell.index()].clone(),
                key[src_cell.index()],
            ));
            // The program moving src → i holds src's owned cells; after
            // the move it must hold i's (position for position).
            rebinding
                .get_or_insert_with(|| Rebinding::identity(layout.cells))
                .map(src_cell, dst_cell);
        }
        // Scalarset family cells move with the slots too: the family
        // member at position `src` becomes the member at position `i`.
        // Unlike owned cells they are cross-read — which is exactly what
        // the scalarset certificate licenses (the scan is an
        // order-insensitive fold, so every program is equivariant under
        // the family permutation).
        if scalarsets {
            for family in spec.scalarset_families() {
                let (src_cell, dst_cell) = (family[src], family[i]);
                cells.push((
                    src_cell.index(),
                    dst_cell.index(),
                    child.mem.cells[src_cell.index()].clone(),
                    key[src_cell.index()],
                ));
                rebinding
                    .get_or_insert_with(|| Rebinding::identity(layout.cells))
                    .map(src_cell, dst_cell);
            }
        }
    }
    for (i, prog) in progs {
        child.programs[i] = prog;
        if let Some(map) = rebinding.as_ref() {
            // A relocated program rebinds when its destination owns
            // cells, or when family members moved with it (its own
            // family handle relocated).
            if scalarsets || !spec.owned(i).is_empty() {
                program_mut(&mut child.programs[i]).rebind(map);
            }
        }
    }
    child.decided = decided;
    for &(old_pos, new_pos, value) in &slots {
        key[new_pos] = value;
        if let Some(moved) = moved.as_deref_mut() {
            moved.push((old_pos, new_pos));
        }
    }
    for (old_pos, new_pos, content, value) in cells {
        child.mem.cells[new_pos] = content;
        key[new_pos] = value;
        if let Some(moved) = moved.as_deref_mut() {
            moved.push((old_pos, new_pos));
        }
    }
    for w in 0..layout.decided_words() {
        key[layout.cells + layout.n + w] = (child.decided >> (32 * w)) as u32;
    }
    if layout.sleep_words > 0 {
        let mut permuted = 0u64;
        for (i, &src) in perm.iter().enumerate() {
            permuted |= (sleep >> src & 1) << i;
        }
        layout.write_sleep(key, permuted);
    }
    Some(perm)
}

/// The leaf weight of an accepted canonical state: how many concrete
/// states its permutation class contains (1 without symmetry). Weighting
/// leaves with this keeps leaf counts identical with symmetry on and
/// off. Signatures come from the **resolved** key (interned ids are
/// injective, so id multiplicities equal value multiplicities).
fn leaf_weight(
    spec: Option<&SymmetrySpec>,
    state: &SysState,
    key: &[u32],
    layout: &KeyLayout,
) -> usize {
    match spec {
        None => 1,
        Some(spec) => {
            let weight = spec.orbit_weight_with(|p| {
                // Owned-cell and scalarset-family ids join the signature
                // exactly as in the canonical sort: members differing
                // only in owned or family contents are distinct
                // arrangements. (Leaves are decided configurations, and
                // the certifier guarantees decided states are never
                // pinned, so families permute freely here.)
                let owned: Vec<u32> = spec.owned(p).iter().map(|a| key[a.index()]).collect();
                let family: Vec<u32> = spec.scalarset_cells(p).map(|a| key[a.index()]).collect();
                (key[layout.prog(p)], state.is_decided(p), owned, family)
            });
            usize::try_from(weight).expect("leaf weight fits usize")
        }
    }
}

/// A DFS frame: one visited node plus a cursor over its expandable
/// actions (each carrying the sleep mask its child will inherit).
struct Frame {
    state: SysState,
    key: Vec<u32>,
    idx: u32,
    actions: Vec<(Action, u64)>,
    cursor: usize,
}

struct SerialEngine<'a> {
    config: &'a ExploreConfig,
    layout: KeyLayout,
    spec: Option<&'a SymmetrySpec>,
    indep: Option<&'a StaticIndependence>,
    por: Option<&'a PorEngine>,
    interner: ValueInterner,
    visited: VisitedTable,
    witness: WitnessLog,
    root_perm: Option<Box<[u8]>>,
    leaves: usize,
    truncated: bool,
}

impl SerialEngine<'_> {
    /// Enters the state whose resolved key is `key`: memoizes it and,
    /// when new and non-terminal, returns the frame to push. Sets
    /// `truncated` when the state is new but the cap is already full.
    /// `parent_key` is the parent's resolved key (empty at the root),
    /// against which the witness log delta-encodes this node's key.
    fn enter(
        &mut self,
        state: SysState,
        key: &[u32],
        parent: Option<ParentLink>,
        parent_key: &[u32],
    ) -> Option<Frame> {
        if self.visited.len() >= self.config.max_states {
            // At the cap, only a *new* state means truncation.
            if self.visited.get(key).is_none() {
                self.truncated = true;
            }
            return None;
        }
        let (idx, is_new) = self.visited.insert(key);
        if !is_new {
            return None;
        }
        match &parent {
            None => self.witness.push(None, 0, None, parent_key, key),
            Some(link) => self.witness.push(
                Some(link.parent),
                action_code(link.action),
                link.perm.as_deref(),
                parent_key,
                key,
            ),
        }
        let (actions, terminal) =
            expand_actions(&state, key, &self.layout, &self.config.crash, self.por);
        if terminal {
            self.leaves += leaf_weight(self.spec, &state, key, &self.layout);
            return None;
        }
        if actions.is_empty() {
            // POR pruned every enabled step (all asleep): the node is
            // visited and counted, but a sibling subtree covers its
            // continuations — not a leaf, nothing to expand.
            return None;
        }
        if let Some(indep) = self.indep {
            cross_validate_node(&state, indep);
        }
        Some(Frame {
            state,
            key: key.to_vec(),
            idx,
            actions,
            cursor: 0,
        })
    }
}

fn explore_serial(
    mut root: SysState,
    config: &ExploreConfig,
    spec: Option<&SymmetrySpec>,
    analysis: &AnalysisCtx,
    stats: &mut ExploreStats,
) -> ExploreOutcome {
    // A byte-capped search must truncate at the same state whatever the
    // thread count; the serial DFS accepts states in a different order
    // than the frontier's canonical level order, so `dispatch` routes
    // `max_bytes` runs to the frontier engine even at threads ≤ 1.
    debug_assert!(
        config.max_bytes.is_none(),
        "byte-capped searches run on the frontier engine"
    );
    let layout = KeyLayout::of(&root, analysis.por.is_some());
    let mut interner = ValueInterner::new();
    let crashes = CrashedSet::new(&root, &mut interner);
    let por = analysis
        .por
        .as_ref()
        .map(|a| PorEngine::new(a.clone(), &mut interner));
    let mut engine = SerialEngine {
        config,
        layout,
        spec,
        indep: analysis.independence.as_ref(),
        por: por.as_ref(),
        interner,
        visited: VisitedTable::new(
            config.storage,
            config.spill_threshold.unwrap_or(DEFAULT_SPILL_THRESHOLD),
        ),
        witness: WitnessLog::new(),
        root_perm: None,
        leaves: 0,
        truncated: false,
    };
    let mut scratch: Vec<u32> = Vec::with_capacity(layout.len());
    let mut stack: Vec<Frame> = Vec::new();
    let outcome = 'search: {
        {
            let mut root_key = ChildKey::root(&layout);
            root_key.resolve(&root, &mut engine.interner);
            if let Some(spec) = spec {
                validate_symmetry(&root, spec, analysis.footprint.as_ref());
                engine.root_perm =
                    canonicalize_child(&mut root, &mut root_key.key, &layout, spec, None);
            }
            if let Some(frame) = engine.enter(root, &root_key.key, None, &[]) {
                stack.push(frame);
            }
        }
        while !stack.is_empty() && !engine.truncated {
            let top = stack.last_mut().expect("non-empty stack");
            if top.cursor >= top.actions.len() {
                stack.pop();
                continue;
            }
            let (action, child_sleep) = top.actions[top.cursor];
            top.cursor += 1;
            let parent_idx = top.idx;
            match make_child_serial(
                &top.state,
                &top.key,
                action,
                child_sleep,
                &layout,
                &crashes,
                &mut engine.interner,
                config.inputs.as_deref(),
                &mut scratch,
                spec,
            ) {
                Err((kind, outputs)) => {
                    let (mut schedule, m) =
                        schedule_to(&engine.witness, engine.root_perm.as_deref(), parent_idx);
                    schedule.push(rename_action(action, m.as_deref()));
                    break 'search ExploreOutcome::Violation {
                        kind,
                        schedule,
                        outputs,
                    };
                }
                Ok((child, perm)) => {
                    let link = ParentLink {
                        parent: parent_idx,
                        action,
                        perm,
                    };
                    if let Some(frame) = engine.enter(child, &scratch, Some(link), &top.key) {
                        stack.push(frame);
                    }
                }
            }
        }
        if engine.truncated {
            ExploreOutcome::Truncated {
                states: engine.visited.len(),
            }
        } else {
            ExploreOutcome::Verified {
                states: engine.visited.len(),
                leaves: engine.leaves,
            }
        }
    };
    stats.interned_bytes = engine.interner.approx_bytes();
    stats.table_bytes = engine.visited.resident_bytes();
    stats.peak_table_bytes = engine.visited.peak_resident_bytes();
    stats.spilled_bytes = engine.visited.spilled_bytes();
    stats.filter_occupancy = engine.visited.filter_bits_set();
    stats.witness_bytes = engine.witness.bytes();
    outcome
}

/// A violation observed while expanding a frontier node: the parent's
/// node index plus the offending action and evidence.
struct FoundViolation {
    parent: u32,
    action: Action,
    kind: ViolationKind,
    outputs: Vec<Value>,
}

/// A deduplicated node awaiting expansion: state, resolved key, global
/// node index and its expandable actions with their child sleep masks
/// (precomputed in the serial classification pass, so the parallel
/// workers never consult the POR engine).
type ExpandNode = (SysState, Vec<u32>, u32, Vec<(Action, u64)>);

/// One expansion worker's output for its contiguous chunk of the level.
struct ChunkOutput {
    children: Vec<PendingChild>,
    violations: Vec<FoundViolation>,
    /// The worker's local overflow interner; consumed by the serial
    /// value-reconciliation pass.
    scratch: ShardInterner,
}

/// Expands one contiguous chunk of the level's nodes. Runs with every
/// shared structure frozen (global interner, visited shards, post-crash
/// set), so any number of workers may execute it concurrently; output
/// order within the chunk is the canonical (parent, action) order.
#[allow(clippy::too_many_arguments)]
fn expand_chunk(
    chunk: &[ExpandNode],
    layout: &KeyLayout,
    crashes: &CrashedSet,
    global: &ValueInterner,
    visited: &ShardedStateTable,
    inputs: Option<&[Value]>,
    spec: Option<&SymmetrySpec>,
    indep: Option<&StaticIndependence>,
) -> ChunkOutput {
    let mut out = ChunkOutput {
        children: Vec::new(),
        violations: Vec::new(),
        scratch: ShardInterner::new(),
    };
    let mut seen_in_chunk = StateTable::new();
    let mut key_scratch: Vec<u32> = Vec::with_capacity(layout.len());
    for (state, key, idx, actions) in chunk {
        if let Some(indep) = indep {
            cross_validate_node(state, indep);
        }
        for &(action, child_sleep) in actions {
            match make_child_frontier(
                state,
                key,
                action,
                child_sleep,
                layout,
                crashes,
                global,
                &mut out.scratch,
                &mut seen_in_chunk,
                &mut key_scratch,
                visited,
                inputs,
                spec,
            ) {
                Err((kind, outputs)) => out.violations.push(FoundViolation {
                    parent: *idx,
                    action,
                    kind,
                    outputs,
                }),
                Ok(Some((child, child_key, unresolved, shard, perm))) => {
                    out.children.push(PendingChild {
                        state: child,
                        key: child_key,
                        unresolved,
                        shard,
                        parent: (*idx, action),
                        perm,
                    });
                }
                Ok(None) => {} // already-visited duplicate, dropped in-worker
            }
        }
    }
    out
}

/// Inserts one shard's routed keys, preserving arrival (canonical)
/// order; `(pos, key, was_new)` feeds the node reconciliation pass.
fn insert_shard(
    table: &mut VisitedTable,
    bucket: Vec<(u32, Vec<u32>)>,
) -> Vec<(u32, Vec<u32>, bool)> {
    bucket
        .into_iter()
        .map(|(pos, key)| {
            let (_, is_new) = table.insert(&key);
            (pos, key, is_new)
        })
        .collect()
}

/// Below this many nodes per worker a level runs on fewer workers —
/// spawning threads for tiny levels costs more than it saves. The
/// results are identical at every worker count: chunking is contiguous
/// and every serial pass walks canonical order, so worker count never
/// affects what is computed, only where.
const MIN_NODES_PER_WORKER: usize = 48;
const MIN_INSERTS_FOR_PARALLEL: usize = 512;

/// How many workers a level of `nodes` frontier nodes fans out to:
/// bounded by the configured `threads`, by the machine's actual
/// parallelism (oversubscribing cores buys coordination cost for no
/// concurrency) and by the level size. `1` selects the fused level path.
fn level_workers(threads: usize, nodes: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    (nodes / MIN_NODES_PER_WORKER).clamp(1, threads.min(cores))
}

/// What processing one frontier level produced.
enum LevelResult {
    /// The next frontier (possibly empty — then the search is done).
    Next(Vec<ExpandNode>),
    /// Violations found while expanding this level (schedule picking
    /// happens at the caller; a violation beats a same-level cap hit).
    Violations(Vec<FoundViolation>),
    /// A new state was needed past the exact cap.
    Truncated,
}

/// The fused single-worker level path: expansion, value interning and
/// sharded insertion in one canonical-order walk, with no freeze
/// hand-off — the direct-interned value ids, shard placement, node
/// indices, parent links, leaf counts and cap behaviour are identical
/// to the staged pipeline's by construction (both process children in
/// canonical order; [`ValueInterner::intern`] is idempotent and
/// first-use-wins either way). Used whenever a level fans out to a
/// single worker, which keeps small levels — and whole runs on
/// single-core machines — free of the staged pipeline's coordination
/// costs.
#[allow(clippy::too_many_arguments)]
fn run_level_fused(
    expand: &[ExpandNode],
    layout: &KeyLayout,
    crashes: &CrashedSet,
    config: &ExploreConfig,
    spec: Option<&SymmetrySpec>,
    indep: Option<&StaticIndependence>,
    por: Option<&PorEngine>,
    global: &mut ValueInterner,
    visited: &mut ShardedStateTable,
    witness: &mut WitnessLog,
    budget: &mut ByteBudget,
    leaves: &mut usize,
) -> LevelResult {
    let mut violations: Vec<FoundViolation> = Vec::new();
    let mut next: Vec<ExpandNode> = Vec::new();
    let mut key_scratch: Vec<u32> = Vec::with_capacity(layout.len());
    let mut truncated = false;
    let inputs = config.inputs.as_deref();
    for (state, key, idx, actions) in expand {
        if let Some(indep) = indep {
            cross_validate_node(state, indep);
        }
        for &(action, child_sleep) in actions {
            // The serial engine's child builder verbatim — the fused
            // path adds only the level bookkeeping around it, so the
            // incremental key logic exists in exactly one place. (Past
            // the cap it still runs, to keep scanning the rest of the
            // level for violations, which outrank truncation — exactly
            // as the staged pipeline's whole-level expansion does; the
            // few extra interns are discarded with the level.)
            let (child, perm) = match make_child_serial(
                state,
                key,
                action,
                child_sleep,
                layout,
                crashes,
                global,
                inputs,
                &mut key_scratch,
                spec,
            ) {
                Err((kind, outputs)) => {
                    violations.push(FoundViolation {
                        parent: *idx,
                        action,
                        kind,
                        outputs,
                    });
                    continue;
                }
                Ok(child) => child,
            };
            if truncated {
                continue;
            }
            let shard = shard_for(visited, &key_scratch);
            let (_, is_new) = visited.shards_mut()[shard].insert(&key_scratch);
            if !is_new {
                continue;
            }
            if witness.len() >= config.max_states || budget.charge(&key_scratch) {
                truncated = true;
                continue;
            }
            let child_idx = u32::try_from(witness.len()).expect("node index fits u32");
            witness.push(
                Some(*idx),
                action_code(action),
                perm.as_deref(),
                key,
                &key_scratch,
            );
            let (child_actions, terminal) =
                expand_actions(&child, &key_scratch, layout, &config.crash, por);
            if terminal {
                *leaves += leaf_weight(spec, &child, &key_scratch, layout);
            } else if !child_actions.is_empty() {
                next.push((child, key_scratch.clone(), child_idx, child_actions));
            }
            // Neither: POR pruned every enabled step — counted, no leaf.
        }
    }
    if !violations.is_empty() {
        LevelResult::Violations(violations)
    } else if truncated {
        LevelResult::Truncated
    } else {
        LevelResult::Next(next)
    }
}

/// The parallel frontier engine: breadth-first levels through a
/// **shard → reconcile → expand** pipeline.
///
/// Per level: (a) *expansion* — contiguous chunks of the frontier fan
/// out across workers, each cloning/stepping children, resolving keys
/// against the frozen global interner (first-seen values spill to a
/// worker-local [`ShardInterner`]), routing by content hash and
/// dropping prior-level duplicates against the frozen visited shards;
/// (b) *value reconciliation* (serial, touches only first-seen values)
/// — local ids are promoted to global ids in canonical order, exactly
/// the ids one serial interner would assign; (c) *sharded dedup* — the
/// surviving children are bucketed by route and each shard's
/// [`StateTable`] inserts its bucket on its own worker; (d) *node
/// reconciliation* (serial, touches only surviving children) — per-shard
/// insert results are merged back into canonical order, new states get
/// dense global node indices, parent links, the exact `max_states`
/// check, and leaf/expansion classification.
///
/// Determinism across runs *and* thread counts: chunks are contiguous
/// and concatenated in chunk order, so canonical order never depends on
/// the worker count; all duplicates of a state share a content route
/// and therefore a shard, so the dedup winner is the canonical-order
/// first occurrence; and node indices are assigned in a serial pass
/// over that order.
/// One staged (multi-worker) level of the pipeline; see
/// [`explore_frontier`] for the phase breakdown.
#[allow(clippy::too_many_arguments)]
fn run_level_staged(
    expand: &[ExpandNode],
    workers: usize,
    layout: &KeyLayout,
    crashes: &CrashedSet,
    config: &ExploreConfig,
    spec: Option<&SymmetrySpec>,
    indep: Option<&StaticIndependence>,
    por: Option<&PorEngine>,
    global: &mut ValueInterner,
    visited: &mut ShardedStateTable,
    witness: &mut WitnessLog,
    budget: &mut ByteBudget,
    leaves: &mut usize,
    stats: &mut ExploreStats,
) -> LevelResult {
    // (a) Parallel expansion over contiguous chunks.
    let chunk_size = expand.len().div_ceil(workers);
    let mut outputs: Vec<ChunkOutput> = std::thread::scope(|scope| {
        let handles: Vec<_> = expand
            .chunks(chunk_size)
            .map(|chunk| {
                let (global, visited, crashes) = (&*global, &*visited, crashes);
                let inputs = config.inputs.as_deref();
                scope.spawn(move || {
                    expand_chunk(chunk, layout, crashes, global, visited, inputs, spec, indep)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });
    // The workers that really fanned out: one per contiguous chunk,
    // which can be fewer than `workers` on small levels. Recorded here —
    // not re-derived at the call site — so the stat can never drift from
    // the chunking policy above.
    stats.max_level_workers = stats.max_level_workers.max(outputs.len());

    let violations: Vec<FoundViolation> = outputs
        .iter_mut()
        .flat_map(|o| o.violations.drain(..))
        .collect();
    if !violations.is_empty() {
        return LevelResult::Violations(violations);
    }

    // (b) Value reconciliation + (c₁) routing, one serial walk in
    // canonical order (chunk order × within-chunk order).
    let total: usize = outputs.iter().map(|o| o.children.len()).sum();
    let mut states: Vec<(SysState, ParentLink)> = Vec::with_capacity(total);
    let mut buckets: Vec<Vec<(u32, Vec<u32>)>> =
        (0..visited.shard_count()).map(|_| Vec::new()).collect();
    for output in outputs {
        let scratch = output.scratch;
        for mut child in output.children {
            for &(pos, local) in &child.unresolved {
                child.key[pos] = global.intern(scratch.value(local));
            }
            let shard = child
                .shard
                .unwrap_or_else(|| shard_for(visited, &child.key));
            let pos = u32::try_from(states.len()).expect("level fits u32");
            buckets[shard].push((pos, child.key));
            states.push((
                child.state,
                ParentLink {
                    parent: child.parent.0,
                    action: child.parent.1,
                    perm: child.perm,
                },
            ));
        }
    }

    // (c₂) Parallel sharded dedup: each shard inserts its bucket.
    let shard_results: Vec<Vec<(u32, Vec<u32>, bool)>> =
        if total < MIN_INSERTS_FOR_PARALLEL || workers == 1 {
            visited
                .shards_mut()
                .iter_mut()
                .zip(buckets)
                .map(|(table, bucket)| insert_shard(table, bucket))
                .collect()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = visited
                    .shards_mut()
                    .iter_mut()
                    .zip(buckets)
                    .map(|(table, bucket)| scope.spawn(move || insert_shard(table, bucket)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            })
        };

    // (d) Node reconciliation: merge per-shard results back into
    // canonical order and assign global node indices, enforcing the
    // cap exactly — a new state past it truncates, a duplicate does
    // not, matching the serial engine state for state.
    let mut merged: Vec<Option<(Vec<u32>, bool)>> = (0..total).map(|_| None).collect();
    for result in shard_results {
        for (pos, key, is_new) in result {
            merged[pos as usize] = Some((key, is_new));
        }
    }
    let mut next: Vec<ExpandNode> = Vec::new();
    for ((state, parent), slot) in states.into_iter().zip(merged) {
        let (key, is_new) = slot.expect("every routed child was inserted");
        if !is_new {
            continue;
        }
        if witness.len() >= config.max_states || budget.charge(&key) {
            return LevelResult::Truncated;
        }
        let idx = u32::try_from(witness.len()).expect("node index fits u32");
        // The parent's key, for the witness delta: every parent of a
        // level's children is a node of the level being expanded, and
        // `expand` is ordered by ascending node index.
        let parent_pos = expand
            .binary_search_by_key(&parent.parent, |node| node.2)
            .expect("parent of a level child is in the expanded level");
        witness.push(
            Some(parent.parent),
            action_code(parent.action),
            parent.perm.as_deref(),
            &expand[parent_pos].1,
            &key,
        );
        let (actions, terminal) = expand_actions(&state, &key, layout, &config.crash, por);
        if terminal {
            *leaves += leaf_weight(spec, &state, &key, layout);
        } else if !actions.is_empty() {
            next.push((state, key, idx, actions));
        }
        // Neither: POR pruned every enabled step — counted, no leaf.
    }
    LevelResult::Next(next)
}

/// The parallel frontier driver. The per-level worker policy and shard
/// count honour [`ExploreConfig::workers_override`] /
/// [`ExploreConfig::shards_override`], which force the staged
/// multi-worker, multi-shard pipeline on machines whose core count would
/// select the fused single-shard configuration. Outcomes are independent
/// of both knobs (asserted by tests); [`ExploreStats`] records what
/// actually ran.
fn explore_frontier(
    mut root: SysState,
    config: &ExploreConfig,
    threads: usize,
    spec: Option<&SymmetrySpec>,
    analysis: &AnalysisCtx,
    stats: &mut ExploreStats,
) -> ExploreOutcome {
    let indep = analysis.independence.as_ref();
    let layout = KeyLayout::of(&root, analysis.por.is_some());
    let mut global = ValueInterner::new();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let shards = config
        .shards_override
        .unwrap_or_else(|| threads.min(cores))
        .max(1);
    let mut visited = ShardedStateTable::new(
        shards,
        config.storage,
        config.spill_threshold.unwrap_or(DEFAULT_SPILL_THRESHOLD),
    );
    let mut witness = WitnessLog::new();
    let mut budget = ByteBudget::new(config.max_bytes);
    let mut root_perm: Option<Box<[u8]>> = None;
    let mut leaves = 0usize;
    let crashes = CrashedSet::new(&root, &mut global);
    let por = analysis
        .por
        .as_ref()
        .map(|a| PorEngine::new(a.clone(), &mut global));
    stats.frontier = true;
    stats.max_level_workers = 1;
    stats.shards = shards;
    stats.por = por.is_some();

    let outcome = 'search: {
        // The root: resolved and inserted serially.
        if config.max_states == 0 {
            break 'search ExploreOutcome::Truncated { states: 0 };
        }
        let mut expand: Vec<ExpandNode> = {
            let mut root_key = ChildKey::root(&layout);
            root_key.resolve(&root, &mut global);
            if let Some(spec) = spec {
                validate_symmetry(&root, spec, analysis.footprint.as_ref());
                root_perm = canonicalize_child(&mut root, &mut root_key.key, &layout, spec, None);
            }
            if budget.charge(&root_key.key) {
                // Even the root exceeds the byte cap.
                break 'search ExploreOutcome::Truncated { states: 0 };
            }
            let shard = shard_for(&visited, &root_key.key);
            visited.shards_mut()[shard].insert(&root_key.key);
            witness.push(None, 0, None, &[], &root_key.key);
            let (actions, terminal) =
                expand_actions(&root, &root_key.key, &layout, &config.crash, por.as_ref());
            if terminal {
                leaves += leaf_weight(spec, &root, &root_key.key, &layout);
                Vec::new()
            } else if actions.is_empty() {
                // Unreachable in practice (the root's sleep set is empty,
                // so its persistent set survives), kept for uniformity.
                Vec::new()
            } else {
                vec![(root, root_key.key, 0, actions)]
            }
        };

        while !expand.is_empty() {
            let workers = config
                .workers_override
                .unwrap_or_else(|| level_workers(threads, expand.len()))
                .clamp(1, threads.max(1));
            let result = if workers == 1 {
                run_level_fused(
                    &expand,
                    &layout,
                    &crashes,
                    config,
                    spec,
                    indep,
                    por.as_ref(),
                    &mut global,
                    &mut visited,
                    &mut witness,
                    &mut budget,
                    &mut leaves,
                )
            } else {
                run_level_staged(
                    &expand,
                    workers,
                    &layout,
                    &crashes,
                    config,
                    spec,
                    indep,
                    por.as_ref(),
                    &mut global,
                    &mut visited,
                    &mut witness,
                    &mut budget,
                    &mut leaves,
                    stats,
                )
            };
            match result {
                LevelResult::Next(next) => expand = next,
                LevelResult::Truncated => {
                    break 'search ExploreOutcome::Truncated {
                        states: witness.len(),
                    };
                }
                LevelResult::Violations(violations) => {
                    // The witness log is deterministic, so every
                    // reconstructed schedule is; the lexicographically
                    // least of the shallowest violating level is the
                    // canonical witness (compared *after* renaming to
                    // original process ids).
                    break 'search violations
                        .into_iter()
                        .map(|v| {
                            let (mut schedule, m) =
                                schedule_to(&witness, root_perm.as_deref(), v.parent);
                            schedule.push(rename_action(v.action, m.as_deref()));
                            (schedule, v.kind, v.outputs)
                        })
                        .min_by(|a, b| a.0.cmp(&b.0))
                        .map(|(schedule, kind, outputs)| ExploreOutcome::Violation {
                            kind,
                            schedule,
                            outputs,
                        })
                        .expect("non-empty violations");
                }
            }
        }

        ExploreOutcome::Verified {
            states: witness.len(),
            leaves,
        }
    };
    stats.interned_bytes = global.approx_bytes();
    stats.table_bytes = visited.resident_bytes();
    stats.peak_table_bytes = visited.peak_resident_bytes();
    stats.spilled_bytes = visited.spilled_bytes();
    stats.filter_occupancy = visited.filter_bits_set();
    stats.witness_bytes = witness.bytes();
    outcome
}

/// Dispatches a rooted search to the serial DFS or parallel frontier
/// engine, normalizing a trivial [`SymmetrySpec`] away so the
/// symmetry-off hot paths stay untouched.
fn dispatch(
    root: SysState,
    config: &ExploreConfig,
    spec: Option<&SymmetrySpec>,
    analysis: &AnalysisCtx,
) -> (ExploreOutcome, ExploreStats) {
    let spec = spec.filter(|s| !s.is_trivial());
    let mut stats = ExploreStats {
        frontier: false,
        max_level_workers: 1,
        shards: 0,
        symmetry: spec.is_some(),
        por: analysis.por.is_some(),
        storage: config.storage,
        ..ExploreStats::default()
    };
    // A `max_bytes` cap routes even serial requests through the
    // frontier engine: its canonical acceptance order is
    // thread-count-invariant, so the byte-truncation point is identical
    // at every thread count (the serial DFS accepts in depth-first
    // order and would truncate at a different state).
    let outcome = if config.threads > 1 || config.max_bytes.is_some() {
        explore_frontier(
            root,
            config,
            config.threads.max(1),
            spec,
            analysis,
            &mut stats,
        )
    } else {
        explore_serial(root, config, spec, analysis, &mut stats)
    };
    (outcome, stats)
}

/// Exhaustively explores every execution of the system produced by
/// `factory` under `config`'s adversary. Dispatches to the serial DFS
/// engine, or to the parallel frontier engine when
/// [`ExploreConfig::threads`] ` > 1`.
pub fn explore(factory: &SystemFactory<'_>, config: &ExploreConfig) -> ExploreOutcome {
    explore_with_stats(factory, config).0
}

/// [`explore`], additionally reporting [`ExploreStats`] about how the
/// search executed (which engine, how wide the pipeline fanned out).
pub fn explore_with_stats(
    factory: &SystemFactory<'_>,
    config: &ExploreConfig,
) -> (ExploreOutcome, ExploreStats) {
    let (mem, programs) = factory();
    let analysis = prepare_analysis(&mem, &programs, config, None);
    dispatch(SysState::root(mem, programs), config, None, &analysis)
}

/// [`explore`] with **process-symmetry reduction**: the factory also
/// declares a [`SymmetrySpec`] naming which process ids are
/// interchangeable, and the engines store only one canonical
/// representative per permutation class. Verdicts are identical to the
/// plain search, leaf counts are identical (canonical leaves are
/// weighted by their class size), state counts shrink by up to the
/// product of the orbit factorials, and violation witness schedules are
/// reported in original process ids (the inverse permutations are
/// threaded through the parent links). A trivial spec degenerates to
/// [`explore`] exactly.
pub fn explore_symmetric(
    factory: &SymmetricSystemFactory<'_>,
    config: &ExploreConfig,
) -> ExploreOutcome {
    explore_symmetric_with_stats(factory, config).0
}

/// [`explore_symmetric`], additionally reporting [`ExploreStats`].
pub fn explore_symmetric_with_stats(
    factory: &SymmetricSystemFactory<'_>,
    config: &ExploreConfig,
) -> (ExploreOutcome, ExploreStats) {
    let (mem, programs, spec) = factory();
    let analysis = prepare_analysis(&mem, &programs, config, Some(&spec));
    dispatch(
        SysState::root(mem, programs),
        config,
        Some(&spec),
        &analysis,
    )
}

/// [`explore`] in parallel frontier mode: uses
/// [`ExploreConfig::threads`] workers, or every available CPU when the
/// config says serial. Verdicts, state counts, leaf counts and
/// truncation counts are byte-identical to [`explore`]'s for any
/// verifying or truncating search (see the module docs for the one
/// place a capped *violating* search may differ).
pub fn explore_parallel(factory: &SystemFactory<'_>, config: &ExploreConfig) -> ExploreOutcome {
    let threads = if config.threads > 1 {
        config.threads
    } else {
        std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get)
    };
    let (mem, programs) = factory();
    let analysis = prepare_analysis(&mem, &programs, config, None);
    let mut stats = ExploreStats::default();
    explore_frontier(
        SysState::root(mem, programs),
        config,
        threads.max(2),
        None,
        &analysis,
        &mut stats,
    )
}

/// The verdict of [`lint_ample`]: the soundness conditions the
/// partial-order reduction rests on, checked without running a reduced
/// search. `errors` name violated conditions (POR on this system would
/// be unsound or refuses to run — the engine panics on the same
/// conditions); `warnings` are diagnostics that do not block POR.
#[derive(Clone, Debug, Default)]
pub struct AmpleLintReport {
    /// Violated eligibility/soundness conditions, one message each
    /// (prefixed `A1`–`A5`, see [`lint_ample`]).
    pub errors: Vec<String>,
    /// Non-blocking diagnostics (e.g. "POR will not reduce this
    /// system").
    pub warnings: Vec<String>,
    /// States visited by the dynamic commutation spot-check (A3).
    pub spot_states: usize,
    /// Pruned-order pair re-executions performed by the spot-check.
    pub spot_pairs: usize,
}

impl AmpleLintReport {
    /// Whether every check passed.
    pub fn ok(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Crash source for the lint's spot-check walk: resets a clone of the
/// parent's program (the walk has no precomputed [`CrashedSet`]).
struct LintCrashes;

impl CrashSource for LintCrashes {
    fn crashed(&mut self, parent: &SysState, p: usize) -> Arc<Box<dyn Program>> {
        let mut fresh = parent.programs[p].boxed_clone();
        fresh.on_crash();
        Arc::new(fresh)
    }
}

/// Statically checks the ample-set-style soundness conditions the POR
/// engine relies on, plus a dynamic spot-check, without running a
/// reduced search — the `tables lint` / CI-gate companion to
/// [`ExploreConfig::por`]:
///
/// * **A1 — analyzability**: the per-local-state footprint analysis
///   converges for every process.
/// * **A2 — termination grounding**: every process's step-edge graph is
///   acyclic, so the crash-free future footprints are well-founded.
/// * **A3 — dynamic commutation spot-check**: a bounded unreduced walk
///   (at most `spot_check_states` states) re-derives the engine's
///   persistent-set choice at every crash-free branching state and
///   re-executes each pruned step order both ways; any divergence —
///   an under-approximated dependency — is an error.
/// * **A4 — crash closure**: no local state's crash-free future escapes
///   its crash-inclusive future (the analysis ignored no crash edge;
///   the engine's crash gate additionally forces full expansion at
///   every crash-enabled node).
/// * **A5 — symmetry equivariance** (when `spec` is given): orbit
///   members' per-state footprints agree modulo the owned-cell
///   renaming, the condition composing POR with rebind canonicalization.
pub fn lint_ample(
    mem: Memory,
    programs: Vec<Box<dyn Program>>,
    spec: Option<&SymmetrySpec>,
    crash: &CrashModel,
    analysis_id: Option<&str>,
    spot_check_states: usize,
) -> AmpleLintReport {
    let mut report = AmpleLintReport::default();
    let analysis = match analysis_id {
        Some(id) => system_analysis_cached(id, &mem, &programs, AnalysisBudget::default()),
        None => analyze_system_states(&mem, &programs, AnalysisBudget::default()).map(Arc::new),
    };
    let analysis = match analysis {
        Ok(a) => a,
        Err(e) => {
            report
                .errors
                .push(format!("A1: the footprint analysis failed: {e}"));
            return report;
        }
    };
    for (p, map) in analysis.per_process.iter().enumerate() {
        if !map.step_acyclic {
            report.errors.push(format!(
                "A2: process p{p}'s step graph is cyclic (a spinning \
                 read loop); its future footprints are not grounded in \
                 termination, so POR is ineligible"
            ));
        }
        if map
            .infos
            .iter()
            .any(|i| !i.future_accessed.is_subset(&i.crash_future_accessed))
            || map
                .infos
                .iter()
                .any(|i| !i.future_mutated.is_subset(&i.crash_future_mutated))
        {
            report.errors.push(format!(
                "A4: process p{p} has a local state whose crash-free \
                 future escapes its crash-inclusive future; the analysis \
                 ignored a crash edge"
            ));
        }
    }
    if let Some(spec) = spec.filter(|s| !s.is_trivial()) {
        if spec.has_moving_scalarsets() {
            // The pairwise owned-cell rename cannot express cross-read
            // families (see `prepare_analysis`); the scalarset
            // certificate's member-exchange and rebind-fidelity checks
            // are the equivariance condition for these specs.
            let cert = crate::scalarset::certify_scalarsets_cached(
                analysis_id,
                &mem,
                &programs,
                spec,
                AnalysisBudget::default(),
            );
            for e in &cert.errors {
                report.errors.push(format!("A5 (scalarset): {e}"));
            }
        } else if let Err(e) = check_por_equivariance(&analysis, spec) {
            report.errors.push(format!("A5: {e}"));
        }
    }
    if report.errors.is_empty() && spot_check_states > 0 {
        spot_check_pruned(
            &analysis,
            SysState::root(mem, programs),
            crash,
            spot_check_states,
            &mut report,
        );
    }
    report
}

/// The A3 walk of [`lint_ample`]: a bounded breadth-first traversal of
/// the **unreduced** state graph that, at every crash-free state where
/// the engine would prune (a singleton persistent set among several
/// enabled steps), re-executes each pruned pair in both orders and
/// reports any divergence.
fn spot_check_pruned(
    analysis: &SystemAnalysis,
    root: SysState,
    crash: &CrashModel,
    cap: usize,
    report: &mut AmpleLintReport,
) {
    type SpotKey = (Vec<Value>, Vec<Value>, u64, usize);
    let spot_key = |s: &SysState| -> SpotKey {
        (
            (0..s.mem.cells.len())
                .map(|i| s.mem.value_ref(i).clone())
                .collect(),
            s.programs.iter().map(|p| p.state_key()).collect(),
            s.decided,
            s.crashes_used,
        )
    };
    let mut visited: std::collections::BTreeSet<SpotKey> = std::collections::BTreeSet::new();
    let mut queue: std::collections::VecDeque<SysState> = std::collections::VecDeque::new();
    let mut saw_singleton = false;
    visited.insert(spot_key(&root));
    queue.push_back(root);
    while let Some(state) = queue.pop_front() {
        if report.spot_states >= cap {
            break;
        }
        report.spot_states += 1;
        let enabled = state.enabled_actions(crash);
        let crash_free = !enabled
            .iter()
            .any(|a| matches!(a, Action::Crash(_) | Action::CrashAll));
        let steps: Vec<usize> = {
            // Distinct acting pids, ascending — a nondeterministic local
            // state contributes one pid however many Branch actions it
            // offers, matching the engine's per-pid lumping.
            let mut pids: Vec<usize> = enabled
                .iter()
                .filter_map(|a| match a {
                    Action::Step(p) | Action::Branch(p, _) => Some(*p),
                    _ => None,
                })
                .collect();
            pids.sort_unstable();
            pids.dedup();
            pids
        };
        if crash_free && steps.len() > 1 {
            // Re-derive the engine's persistent-set choice on raw state
            // keys (the lint runs without an interner) — identical
            // condition, identical tie-break (first eligible pid).
            let infos: Vec<&LocalStateInfo> = steps
                .iter()
                .map(|&p| {
                    analysis.per_process[p]
                        .lookup(&state.programs[p].state_key(), false)
                        .expect("reachable local state was memoized by the analysis")
                })
                .collect();
            let choice = (0..steps.len()).find(|&i| {
                infos.iter().enumerate().all(|(j, other)| {
                    j == i
                        || (infos[i].imm_mutated.is_disjoint(&other.future_accessed)
                            && other.future_mutated.is_disjoint(&infos[i].imm_accessed))
                })
            });
            if let Some(i) = choice {
                saw_singleton = true;
                let p = steps[i];
                for &q in &steps {
                    if q == p {
                        continue;
                    }
                    report.spot_pairs += 1;
                    if let Some(diff) = commute_divergence(&state, p, q) {
                        report.errors.push(format!(
                            "A3: a pruned interleaving diverges at a \
                             sampled state: step orders p{p};p{q} and \
                             p{q};p{p} disagree on {diff} — the static \
                             dependency relation under-approximates"
                        ));
                        return;
                    }
                }
            }
        }
        for &action in &enabled {
            let (mut child, _, newly) = match action {
                Action::Step(_) => apply_to_child(&state, action, &mut NoCrashes),
                _ => apply_to_child(&state, action, &mut LintCrashes),
            };
            if let Some(v) = newly {
                child.decided_value.get_or_insert(v);
            }
            if visited.insert(spot_key(&child)) {
                queue.push_back(child);
            }
        }
    }
    if !saw_singleton && report.spot_states > 1 {
        report.warnings.push(
            "A3: no sampled state admitted a singleton persistent set; \
             POR will not reduce this system (every enabled pair of \
             steps conflicts)"
                .to_string(),
        );
    }
}

/// Executes each step-like action pair of `p` and `q` in both orders
/// from `state` and names the first divergence, or `None` when every
/// pair commutes — [`cross_validate_node`]'s check, reporting instead
/// of asserting. A nondeterministic local state contributes one action
/// per choice; independence is per process, so every cross-pid pair
/// must commute.
fn commute_divergence(state: &SysState, p: usize, q: usize) -> Option<String> {
    let acts = |w: usize| -> Vec<Action> {
        let choices = state.programs[w].choices();
        if choices.len() <= 1 {
            vec![Action::Step(w)]
        } else {
            choices.into_iter().map(|c| Action::Branch(w, c)).collect()
        }
    };
    for &pa in &acts(p) {
        for &qa in &acts(q) {
            let both = |a: Action, b: Action| {
                let (mid, _, da) = apply_to_child(state, a, &mut NoCrashes);
                let (end, _, db) = apply_to_child(&mid, b, &mut NoCrashes);
                (end, da, db)
            };
            let (pq, p_first, q_second) = both(pa, qa);
            let (qp, q_first, p_second) = both(qa, pa);
            if p_first != p_second {
                return Some(format!("p{p}'s step outcome"));
            }
            if q_first != q_second {
                return Some(format!("p{q}'s step outcome"));
            }
            if pq.decided != qp.decided {
                return Some("the decided flags".to_string());
            }
            for who in [p, q] {
                if pq.programs[who].state_key() != qp.programs[who].state_key() {
                    return Some(format!("p{who}'s local state"));
                }
            }
            for cell in 0..pq.mem.cells.len() {
                if pq.mem.value_ref(cell) != qp.mem.value_ref(cell) {
                    return Some(format!("cell @{cell}"));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{Addr, MemOps};

    /// A correct 1-process program: decides its input.
    #[derive(Clone, Debug)]
    struct DecideInput {
        input: Value,
    }
    impl Program for DecideInput {
        fn step(&mut self, _: &mut dyn MemOps) -> Step {
            Step::Decided(self.input.clone())
        }
        fn on_crash(&mut self) {}
        fn state_key(&self) -> Value {
            Value::Unit
        }
        fn boxed_clone(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
    }

    /// A deliberately broken 2-process "consensus": each decides its own
    /// input — agreement fails whenever inputs differ.
    #[derive(Clone, Debug)]
    struct DecideOwn {
        input: Value,
    }
    impl Program for DecideOwn {
        fn step(&mut self, _: &mut dyn MemOps) -> Step {
            Step::Decided(self.input.clone())
        }
        fn on_crash(&mut self) {}
        fn state_key(&self) -> Value {
            Value::Unit
        }
        fn boxed_clone(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
    }

    /// Writes 0 on the first run, and after a crash decides 1 — violating
    /// agreement across re-runs of the *same* process when combined with
    /// the first run's decision. Used to check post-decide crash handling.
    #[derive(Clone, Debug)]
    struct ForgetfulDecider {
        addr: Addr,
        pc: u8,
    }
    impl Program for ForgetfulDecider {
        fn step(&mut self, mem: &mut dyn MemOps) -> Step {
            match self.pc {
                0 => {
                    // First run: decide 0 and mark the memory.
                    let seen = mem.read_register(self.addr);
                    self.pc = 1;
                    if seen.is_bottom() {
                        Step::Running
                    } else {
                        // Recovery run: decide differently. BUG by design.
                        Step::Decided(Value::Int(1))
                    }
                }
                _ => {
                    mem.write_register(self.addr, Value::Int(0));
                    Step::Decided(Value::Int(0))
                }
            }
        }
        fn on_crash(&mut self) {
            self.pc = 0;
        }
        fn state_key(&self) -> Value {
            Value::Int(i64::from(self.pc))
        }
        fn boxed_clone(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
    }

    fn forgetful_factory() -> (Memory, Vec<Box<dyn Program>>) {
        let mut mem = Memory::new();
        let addr = mem.alloc_register(Value::Bottom);
        let programs: Vec<Box<dyn Program>> = vec![Box::new(ForgetfulDecider { addr, pc: 0 })];
        (mem, programs)
    }

    #[test]
    fn verifies_trivial_agreeing_system() {
        let outcome = explore(
            &|| {
                let mem = Memory::new();
                let programs: Vec<Box<dyn Program>> = vec![
                    Box::new(DecideInput {
                        input: Value::Int(3),
                    }),
                    Box::new(DecideInput {
                        input: Value::Int(3),
                    }),
                ];
                (mem, programs)
            },
            &ExploreConfig {
                crash: CrashModel::independent(2),
                inputs: Some(vec![Value::Int(3)]),
                ..ExploreConfig::default()
            },
        );
        assert!(outcome.is_verified(), "{outcome:?}");
    }

    #[test]
    fn finds_agreement_violation() {
        let outcome = explore(
            &|| {
                let mem = Memory::new();
                let programs: Vec<Box<dyn Program>> = vec![
                    Box::new(DecideOwn {
                        input: Value::Int(0),
                    }),
                    Box::new(DecideOwn {
                        input: Value::Int(1),
                    }),
                ];
                (mem, programs)
            },
            &ExploreConfig::default(),
        );
        match outcome {
            ExploreOutcome::Violation {
                kind,
                schedule,
                outputs,
                ..
            } => {
                assert_eq!(kind, ViolationKind::Agreement);
                assert_eq!(schedule.len(), 2, "two steps suffice");
                assert_eq!(outputs.len(), 2);
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn finds_validity_violation() {
        let outcome = explore(
            &|| {
                let mem = Memory::new();
                let programs: Vec<Box<dyn Program>> = vec![Box::new(DecideInput {
                    input: Value::Int(9),
                })];
                (mem, programs)
            },
            &ExploreConfig {
                inputs: Some(vec![Value::Int(0), Value::Int(1)]),
                ..ExploreConfig::default()
            },
        );
        match outcome {
            ExploreOutcome::Violation { kind, .. } => {
                assert_eq!(kind, ViolationKind::Validity)
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn post_decide_crashes_catch_rerun_disagreement() {
        // Without post-decide crashes the bug is invisible…
        let outcome = explore(
            &forgetful_factory,
            &ExploreConfig {
                crash: CrashModel::independent(1),
                ..ExploreConfig::default()
            },
        );
        assert!(outcome.is_verified(), "{outcome:?}");
        // …with them, the model checker finds the re-run disagreement.
        let outcome = explore(
            &forgetful_factory,
            &ExploreConfig {
                crash: CrashModel::independent(1).after_decide(true),
                ..ExploreConfig::default()
            },
        );
        assert!(outcome.is_violation(), "{outcome:?}");
    }

    /// Regression: the simultaneous branch used to reset decided
    /// processes even with post-decide crashes disabled, finding
    /// "violations" the configured adversary cannot produce.
    #[test]
    fn simultaneous_crashes_respect_post_decide_policy() {
        let outcome = explore(
            &forgetful_factory,
            &ExploreConfig {
                crash: CrashModel::simultaneous(1),
                ..ExploreConfig::default()
            },
        );
        assert!(
            outcome.is_verified(),
            "CrashAll must not reset a decided run when post-decide \
             crashes are disabled: {outcome:?}"
        );
        let outcome = explore(
            &forgetful_factory,
            &ExploreConfig {
                crash: CrashModel::simultaneous(1).after_decide(true),
                ..ExploreConfig::default()
            },
        );
        assert!(outcome.is_violation(), "{outcome:?}");
    }

    #[test]
    fn simultaneous_mode_explores_crash_all() {
        let outcome = explore(
            &|| {
                let mem = Memory::new();
                let programs: Vec<Box<dyn Program>> = vec![
                    Box::new(DecideInput {
                        input: Value::Int(1),
                    }),
                    Box::new(DecideInput {
                        input: Value::Int(1),
                    }),
                ];
                (mem, programs)
            },
            &ExploreConfig {
                crash: CrashModel::simultaneous(2).after_decide(true),
                ..ExploreConfig::default()
            },
        );
        assert!(outcome.is_verified());
    }

    /// Regression: the cap used to trigger only after `max_states + 1`
    /// states had been visited. Now exactly `max_states` are visited,
    /// and a cap equal to the state-space size still verifies.
    #[test]
    fn state_cap_is_exact() {
        let factory = forgetful_factory;
        let config = ExploreConfig {
            crash: CrashModel::independent(1).after_decide(false),
            ..ExploreConfig::default()
        };
        let total = match explore(&factory, &config) {
            ExploreOutcome::Verified { states, .. } => states,
            other => panic!("expected verified, got {other:?}"),
        };
        // A cap exactly at the state-space size does not truncate.
        let outcome = explore(
            &factory,
            &ExploreConfig {
                max_states: total,
                ..config.clone()
            },
        );
        assert!(outcome.is_verified(), "{outcome:?}");
        // One below: truncates having visited exactly the cap.
        let outcome = explore(
            &factory,
            &ExploreConfig {
                max_states: total - 1,
                ..config.clone()
            },
        );
        match outcome {
            ExploreOutcome::Truncated { states } => assert_eq!(states, total - 1),
            other => panic!("expected truncation, got {other:?}"),
        }
        assert!(outcome.is_truncated());
    }

    /// The iterative engine survives crash budgets that would overflow
    /// the recursive seed engine's call stack (execution length grows
    /// linearly with the budget).
    #[test]
    fn deep_crash_budgets_do_not_overflow() {
        let outcome = explore(
            &|| {
                let mut mem = Memory::new();
                let addr = mem.alloc_register(Value::Bottom);
                #[derive(Clone, Debug)]
                struct WriteThenDecide {
                    addr: Addr,
                    pc: u8,
                }
                impl Program for WriteThenDecide {
                    fn step(&mut self, mem: &mut dyn MemOps) -> Step {
                        if self.pc == 0 {
                            mem.write_register(self.addr, Value::Int(1));
                            self.pc = 1;
                            Step::Running
                        } else {
                            Step::Decided(mem.read_register(self.addr))
                        }
                    }
                    fn on_crash(&mut self) {
                        self.pc = 0;
                    }
                    fn state_key(&self) -> Value {
                        Value::Int(i64::from(self.pc))
                    }
                    fn boxed_clone(&self) -> Box<dyn Program> {
                        Box::new(self.clone())
                    }
                }
                let programs: Vec<Box<dyn Program>> =
                    vec![Box::new(WriteThenDecide { addr, pc: 0 })];
                (mem, programs)
            },
            &ExploreConfig {
                crash: CrashModel::independent(50_000).after_decide(true),
                ..ExploreConfig::default()
            },
        );
        assert!(outcome.is_verified(), "{outcome:?}");
    }

    /// Serial and parallel engines agree on verdicts, state counts and
    /// leaf counts, at several thread (and therefore shard) counts.
    #[test]
    fn parallel_engine_matches_serial() {
        let factory = forgetful_factory;
        for after_decide in [false, true] {
            let config = ExploreConfig {
                crash: CrashModel::independent(2).after_decide(after_decide),
                ..ExploreConfig::default()
            };
            let serial = explore(&factory, &config);
            for threads in [2usize, 3, 4] {
                let parallel = explore_parallel(
                    &factory,
                    &ExploreConfig {
                        threads,
                        ..config.clone()
                    },
                );
                match (&serial, &parallel) {
                    (
                        ExploreOutcome::Verified { states, leaves },
                        ExploreOutcome::Verified {
                            states: p_states,
                            leaves: p_leaves,
                        },
                    ) => {
                        assert_eq!(states, p_states, "threads {threads}");
                        assert_eq!(leaves, p_leaves, "threads {threads}");
                    }
                    (
                        ExploreOutcome::Violation { kind, .. },
                        ExploreOutcome::Violation { kind: p_kind, .. },
                    ) => {
                        assert_eq!(kind, p_kind, "threads {threads}");
                    }
                    other => panic!("engines disagree: {other:?}"),
                }
            }
        }
    }

    /// The parallel engine's `max_states` cap is exact and byte-identical
    /// to the serial engine's at every boundary: below, at and above the
    /// state-space size.
    #[test]
    fn parallel_state_cap_matches_serial_exactly() {
        let factory = forgetful_factory;
        let base = ExploreConfig {
            crash: CrashModel::independent(1).after_decide(false),
            ..ExploreConfig::default()
        };
        let total = match explore(&factory, &base) {
            ExploreOutcome::Verified { states, .. } => states,
            other => panic!("expected verified, got {other:?}"),
        };
        for cap in [1, 2, total - 1, total, total + 1] {
            let config = ExploreConfig {
                max_states: cap,
                ..base.clone()
            };
            let serial = explore(&factory, &config);
            for threads in [2usize, 3, 4] {
                let parallel = explore(
                    &factory,
                    &ExploreConfig {
                        threads,
                        ..config.clone()
                    },
                );
                assert_eq!(serial, parallel, "cap {cap}, threads {threads}");
            }
            if cap >= total {
                assert!(serial.is_verified(), "cap {cap}: {serial:?}");
            } else {
                assert_eq!(
                    serial,
                    ExploreOutcome::Truncated { states: cap },
                    "the cap is exact"
                );
            }
        }
    }

    /// The staged multi-worker pipeline — forced on, whatever this
    /// machine's core count would select — matches the serial engine
    /// byte-for-byte: verdicts, state counts, leaf counts, truncation
    /// counts and violation witnesses, at several worker counts and cap
    /// boundaries. (The public entry points pick fused vs staged by
    /// core count; this pins the staged path itself.)
    #[test]
    fn staged_pipeline_matches_serial_at_forced_worker_counts() {
        let factory = forgetful_factory;
        let base = ExploreConfig {
            crash: CrashModel::independent(2).after_decide(false),
            ..ExploreConfig::default()
        };
        let total = match explore(&factory, &base) {
            ExploreOutcome::Verified { states, .. } => states,
            other => panic!("expected verified, got {other:?}"),
        };
        let mut configs = vec![base.clone()];
        for cap in [2usize, total - 1, total] {
            configs.push(ExploreConfig {
                max_states: cap,
                ..base.clone()
            });
        }
        // A violating config: post-decide crashes expose the re-run
        // disagreement the forgetful decider is built to exhibit.
        configs.push(ExploreConfig {
            crash: CrashModel::independent(2).after_decide(true),
            ..base.clone()
        });
        for config in configs {
            let serial = explore(&factory, &config);
            for (workers, shards) in [(2usize, 2usize), (3, 3), (4, 2), (3, 5)] {
                let forced = ExploreConfig {
                    threads: 4,
                    workers_override: Some(workers),
                    shards_override: Some(shards),
                    ..config.clone()
                };
                let (staged, stats) = explore_with_stats(&factory, &forced);
                assert!(stats.frontier, "threads 4 must select the frontier engine");
                assert_eq!(stats.shards, shards, "forced shard count must be honoured");
                if serial.is_violation() {
                    // DFS and frontier order legitimately pick different
                    // (both valid) witnesses; the frontier pick itself
                    // must not depend on worker or shard counts.
                    let reference = explore(
                        &factory,
                        &ExploreConfig {
                            threads: 4,
                            workers_override: Some(2),
                            shards_override: Some(2),
                            ..config.clone()
                        },
                    );
                    assert_eq!(reference, staged, "workers {workers} shards {shards}");
                    assert!(
                        staged.is_violation(),
                        "workers {workers} shards {shards}: {staged:?}"
                    );
                } else {
                    assert_eq!(serial, staged, "workers {workers} shards {shards}");
                }
            }
        }
    }

    /// Symmetry reduction on a fully symmetric system: same verdict,
    /// identical (weighted) leaf counts, strictly fewer states — in the
    /// serial engine and in the frontier engine at several thread
    /// counts, byte-identically.
    #[test]
    fn symmetry_reduces_states_and_preserves_leaves() {
        #[derive(Clone, Debug)]
        struct WriteThenDecide {
            addr: Addr,
            pc: u8,
        }
        impl Program for WriteThenDecide {
            fn step(&mut self, mem: &mut dyn MemOps) -> Step {
                if self.pc == 0 {
                    mem.write_register(self.addr, Value::Int(1));
                    self.pc = 1;
                    Step::Running
                } else {
                    Step::Decided(mem.read_register(self.addr))
                }
            }
            fn on_crash(&mut self) {
                self.pc = 0;
            }
            fn state_key(&self) -> Value {
                Value::Int(i64::from(self.pc))
            }
            fn boxed_clone(&self) -> Box<dyn Program> {
                Box::new(self.clone())
            }
        }
        let n = 3;
        let plain = || {
            let mut mem = Memory::new();
            let addr = mem.alloc_register(Value::Bottom);
            let programs: Vec<Box<dyn Program>> = (0..n)
                .map(|_| Box::new(WriteThenDecide { addr, pc: 0 }) as Box<dyn Program>)
                .collect();
            (mem, programs)
        };
        let symmetric = || {
            let (mem, programs) = plain();
            (mem, programs, SymmetrySpec::full(n))
        };
        let config = ExploreConfig {
            crash: CrashModel::independent(1).after_decide(false),
            ..ExploreConfig::default()
        };
        let off = explore(&plain, &config);
        let (on, stats) = explore_symmetric_with_stats(&symmetric, &config);
        assert!(stats.symmetry);
        let (off_states, off_leaves) = match off {
            ExploreOutcome::Verified { states, leaves } => (states, leaves),
            other => panic!("expected verified, got {other:?}"),
        };
        match &on {
            ExploreOutcome::Verified { states, leaves } => {
                assert!(
                    *states < off_states,
                    "symmetry must merge permutation classes: {states} vs {off_states}"
                );
                assert_eq!(
                    *leaves, off_leaves,
                    "weighted leaf counts must match the plain engine"
                );
            }
            other => panic!("expected verified, got {other:?}"),
        }
        for threads in [2usize, 3, 4] {
            let parallel = explore_symmetric(
                &symmetric,
                &ExploreConfig {
                    threads,
                    workers_override: Some(threads),
                    shards_override: Some(threads),
                    ..config.clone()
                },
            );
            assert_eq!(on, parallel, "threads {threads}");
        }
    }

    /// A trivial spec degenerates to the plain engine byte-for-byte, and
    /// an orbit grouping processes with different initial states is
    /// rejected loudly.
    #[test]
    fn trivial_spec_matches_plain_engine_exactly() {
        let symmetric = || {
            let (mem, programs) = forgetful_factory();
            let n = programs.len();
            (mem, programs, SymmetrySpec::trivial(n))
        };
        let config = ExploreConfig {
            crash: CrashModel::independent(2).after_decide(true),
            ..ExploreConfig::default()
        };
        let (outcome, stats) = explore_symmetric_with_stats(&symmetric, &config);
        assert!(!stats.symmetry, "a trivial spec must be normalized away");
        assert_eq!(outcome, explore(&forgetful_factory, &config));
    }

    /// An orbit whose members start in different states (here: different
    /// inputs, visible through honest state keys) is a declaration bug
    /// and must panic, not silently merge inequivalent states.
    #[test]
    #[should_panic(expected = "different")]
    fn mismatched_orbit_declaration_is_rejected() {
        /// Decides its input; the key honestly includes the input, so
        /// cross-process key equality implies behavioural equality.
        #[derive(Clone, Debug)]
        struct KeyedDecider {
            input: Value,
        }
        impl Program for KeyedDecider {
            fn step(&mut self, _: &mut dyn MemOps) -> Step {
                Step::Decided(self.input.clone())
            }
            fn on_crash(&mut self) {}
            fn state_key(&self) -> Value {
                self.input.clone()
            }
            fn boxed_clone(&self) -> Box<dyn Program> {
                Box::new(self.clone())
            }
        }
        let symmetric = || {
            let mem = Memory::new();
            let programs: Vec<Box<dyn Program>> = vec![
                Box::new(KeyedDecider {
                    input: Value::Int(0),
                }),
                Box::new(KeyedDecider {
                    input: Value::Int(1),
                }),
            ];
            (mem, programs, SymmetrySpec::full(2))
        };
        let _ = explore_symmetric(&symmetric, &ExploreConfig::default());
    }

    /// Witness schedules from a symmetric search replay against the
    /// *original* system: the inverse permutations threaded through the
    /// parent links rename every action back to original process ids.
    #[test]
    fn symmetric_violation_witness_replays_in_original_pids() {
        use crate::exec::{run, RunOptions};
        use crate::sched::ScriptedScheduler;
        let inputs = [Value::Int(5), Value::Int(7), Value::Int(7)];
        let plain = || {
            let mem = Memory::new();
            let programs: Vec<Box<dyn Program>> = inputs
                .iter()
                .map(|input| {
                    Box::new(DecideOwn {
                        input: input.clone(),
                    }) as Box<dyn Program>
                })
                .collect();
            (mem, programs)
        };
        let symmetric = || {
            let (mem, programs) = plain();
            (mem, programs, SymmetrySpec::from_classes(&inputs))
        };
        for threads in [1usize, 2, 4] {
            let config = ExploreConfig {
                threads,
                workers_override: (threads > 1).then_some(threads),
                shards_override: (threads > 1).then_some(threads),
                ..ExploreConfig::default()
            };
            let outcome = explore_symmetric(&symmetric, &config);
            let (schedule, outputs) = match outcome {
                ExploreOutcome::Violation {
                    kind: ViolationKind::Agreement,
                    schedule,
                    outputs,
                } => (schedule, outputs),
                other => panic!("expected agreement violation, got {other:?}"),
            };
            // Replay the schedule on the original (un-permuted) system.
            let (mut mem, mut programs) = plain();
            let mut sched = ScriptedScheduler::then_finish(schedule.clone());
            let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
            let mut decisions: Vec<Value> = exec.outputs.iter().flatten().cloned().collect();
            decisions.sort();
            decisions.dedup();
            assert!(
                decisions.len() >= 2,
                "threads {threads}: replayed schedule {schedule:?} must \
                 reproduce the disagreement, decided {decisions:?}"
            );
            assert_eq!(outputs.len(), 2, "threads {threads}");
        }
    }

    /// A mask-register-style program: writes its *own* register (owned,
    /// never touched by anyone else), then decides what it reads back.
    /// Implements the full-state symmetry hooks, so processes with equal
    /// inputs form an orbit whose registers permute with them.
    #[derive(Clone, Debug)]
    struct OwnRegWriter {
        reg: Addr,
        input: Value,
        pc: u8,
    }
    impl Program for OwnRegWriter {
        fn step(&mut self, mem: &mut dyn MemOps) -> Step {
            if self.pc == 0 {
                mem.write_register(self.reg, self.input.clone());
                self.pc = 1;
                Step::Running
            } else {
                Step::Decided(mem.read_register(self.reg))
            }
        }
        fn on_crash(&mut self) {
            self.pc = 0;
        }
        fn state_key(&self) -> Value {
            Value::pair(Value::Int(i64::from(self.pc)), self.input.clone())
        }
        fn boxed_clone(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
        fn rebind(&mut self, map: &crate::program::Rebinding) {
            self.reg = map.lookup(self.reg);
        }
        fn referenced_cells(&self) -> Option<Vec<Addr>> {
            Some(vec![self.reg])
        }
    }

    fn own_reg_factory(n: usize) -> (Memory, Vec<Box<dyn Program>>, Vec<Addr>) {
        let mut mem = Memory::new();
        let regs: Vec<Addr> = (0..n).map(|_| mem.alloc_register(Value::Bottom)).collect();
        let programs: Vec<Box<dyn Program>> = regs
            .iter()
            .map(|&reg| {
                Box::new(OwnRegWriter {
                    reg,
                    input: Value::Int(1),
                    pc: 0,
                }) as Box<dyn Program>
            })
            .collect();
        (mem, programs, regs)
    }

    /// Full-state symmetry on a system of per-process *owned* registers:
    /// without the owned-cell declaration the registers distinguish the
    /// processes (orbits must be singletons — no reduction); with it,
    /// cells permute with their owners and programs are rebound, so the
    /// orbit collapses. Verdicts and weighted leaf counts are identical,
    /// byte-identically across engines and thread counts.
    #[test]
    fn owned_cell_orbits_reduce_and_preserve_leaves() {
        let n = 3;
        let plain = || {
            let (mem, programs, _) = own_reg_factory(n);
            (mem, programs)
        };
        let rebind = || {
            let (mem, programs, regs) = own_reg_factory(n);
            let mut spec = SymmetrySpec::full(n);
            for (p, &reg) in regs.iter().enumerate() {
                spec = spec.with_owned_cells(p, vec![reg]);
            }
            (mem, programs, spec)
        };
        let config = ExploreConfig {
            crash: CrashModel::independent(1).after_decide(false),
            inputs: Some(vec![Value::Int(1)]),
            ..ExploreConfig::default()
        };
        let off = explore(&plain, &config);
        let (off_states, off_leaves) = match off {
            ExploreOutcome::Verified { states, leaves } => (states, leaves),
            other => panic!("expected verified, got {other:?}"),
        };
        let (on, stats) = explore_symmetric_with_stats(&rebind, &config);
        assert!(stats.symmetry);
        match &on {
            ExploreOutcome::Verified { states, leaves } => {
                assert!(
                    *states < off_states,
                    "owned-cell orbits must merge permutation classes: \
                     {states} vs {off_states}"
                );
                assert_eq!(*leaves, off_leaves, "weighted leaves must match");
            }
            other => panic!("expected verified, got {other:?}"),
        }
        for threads in [2usize, 3, 4] {
            let parallel = explore_symmetric(
                &rebind,
                &ExploreConfig {
                    threads,
                    workers_override: Some(threads),
                    shards_override: Some(threads),
                    ..config.clone()
                },
            );
            assert_eq!(on, parallel, "threads {threads}");
        }
    }

    /// The owner-only rule: a process reading another process's owned
    /// register makes the quotient unsound, and the declaration is
    /// rejected at search start.
    #[test]
    #[should_panic(expected = "owned by p1 but referenced by p0")]
    fn cross_referenced_owned_cell_is_rejected() {
        /// Reads p0's register instead of its own — the Fig. 4
        /// round-scan shape in miniature.
        #[derive(Clone, Debug)]
        struct Spy {
            own: Addr,
            other: Addr,
        }
        impl Program for Spy {
            fn step(&mut self, mem: &mut dyn MemOps) -> Step {
                mem.write_register(self.own, Value::Int(1));
                Step::Decided(mem.read_register(self.other))
            }
            fn on_crash(&mut self) {}
            fn state_key(&self) -> Value {
                Value::Unit
            }
            fn boxed_clone(&self) -> Box<dyn Program> {
                Box::new(self.clone())
            }
            fn rebind(&mut self, map: &crate::program::Rebinding) {
                self.own = map.lookup(self.own);
                self.other = map.lookup(self.other);
            }
            fn referenced_cells(&self) -> Option<Vec<Addr>> {
                Some(vec![self.own, self.other])
            }
        }
        let factory = || {
            let mut mem = Memory::new();
            let r0 = mem.alloc_register(Value::Bottom);
            let r1 = mem.alloc_register(Value::Bottom);
            let programs: Vec<Box<dyn Program>> = vec![
                Box::new(Spy { own: r0, other: r1 }),
                Box::new(Spy { own: r1, other: r0 }),
            ];
            let spec = SymmetrySpec::full(2)
                .with_owned_cells(0, vec![r0])
                .with_owned_cells(1, vec![r1]);
            (mem, programs, spec)
        };
        let _ = explore_symmetric(&factory, &ExploreConfig::default());
    }

    /// Programs without a `rebind` implementation cannot be relocated,
    /// so an owned-cell declaration over them is rejected at search
    /// start (the identity-map probe) — not at the first non-identity
    /// canonicalization deep inside a search. (ForgetfulDecider also
    /// has no `referenced_cells`, which used to be the rejection
    /// trigger; the footprint analysis now covers that gap, so the
    /// rebind probe is what stands between this system and a search.)
    #[test]
    #[should_panic(expected = "does not support address rebinding")]
    fn rebindless_programs_reject_owned_declarations() {
        let factory = || {
            let mut mem = Memory::new();
            let r0 = mem.alloc_register(Value::Bottom);
            let r1 = mem.alloc_register(Value::Bottom);
            let programs: Vec<Box<dyn Program>> = vec![
                Box::new(ForgetfulDecider { addr: r0, pc: 0 }),
                Box::new(ForgetfulDecider { addr: r1, pc: 0 }),
            ];
            let spec = SymmetrySpec::full(2)
                .with_owned_cells(0, vec![r0])
                .with_owned_cells(1, vec![r1]);
            (mem, programs, spec)
        };
        let _ = explore_symmetric(&factory, &ExploreConfig::default());
    }

    /// OwnRegWriter minus `referenced_cells`: rebindable, but its
    /// reference set is not hand-enumerable. Before the footprint
    /// analysis this was rejected ("does not enumerate its referenced
    /// cells"); the analyzer now derives the reference sets, proves the
    /// owner-only rule and the search runs — with the same verdict and
    /// weighted leaf count as the symmetry-off search.
    #[test]
    fn analyzer_validates_undeclared_owned_cell_systems() {
        #[derive(Clone, Debug)]
        struct UndeclaredOwnReg {
            reg: Addr,
            pc: u8,
        }
        impl Program for UndeclaredOwnReg {
            fn step(&mut self, mem: &mut dyn MemOps) -> Step {
                if self.pc == 0 {
                    mem.write_register(self.reg, Value::Int(1));
                    self.pc = 1;
                    Step::Running
                } else {
                    Step::Decided(mem.read_register(self.reg))
                }
            }
            fn on_crash(&mut self) {
                self.pc = 0;
            }
            fn state_key(&self) -> Value {
                Value::Int(i64::from(self.pc))
            }
            fn boxed_clone(&self) -> Box<dyn Program> {
                Box::new(self.clone())
            }
            fn rebind(&mut self, map: &crate::program::Rebinding) {
                self.reg = map.lookup(self.reg);
            }
            // No referenced_cells: the analyzer must stand in.
        }
        let n = 3;
        let build = |mem: &mut Memory| -> (Vec<Addr>, Vec<Box<dyn Program>>) {
            let regs: Vec<Addr> = (0..n).map(|_| mem.alloc_register(Value::Bottom)).collect();
            let programs = regs
                .iter()
                .map(|&reg| Box::new(UndeclaredOwnReg { reg, pc: 0 }) as Box<dyn Program>)
                .collect();
            (regs, programs)
        };
        let plain = || {
            let mut mem = Memory::new();
            let (_, programs) = build(&mut mem);
            (mem, programs)
        };
        let symmetric = || {
            let mut mem = Memory::new();
            let (regs, programs) = build(&mut mem);
            let mut spec = SymmetrySpec::full(n);
            for (p, &reg) in regs.iter().enumerate() {
                spec = spec.with_owned_cells(p, vec![reg]);
            }
            (mem, programs, spec)
        };
        let config = ExploreConfig {
            crash: CrashModel::independent(1).after_decide(false),
            ..ExploreConfig::default()
        };
        let (off_states, off_leaves) = match explore(&plain, &config) {
            ExploreOutcome::Verified { states, leaves } => (states, leaves),
            other => panic!("expected verified, got {other:?}"),
        };
        match explore_symmetric(&symmetric, &config) {
            ExploreOutcome::Verified { states, leaves } => {
                assert!(states < off_states, "{states} vs {off_states}");
                assert_eq!(leaves, off_leaves, "weighted leaves must match");
            }
            other => panic!("expected verified, got {other:?}"),
        }
    }

    /// A rebindable program whose local-state graph is unbounded
    /// defeats the footprint analysis (budget exhaustion); without a
    /// hand-written `referenced_cells` to fall back to, the owned-cell
    /// declaration is rejected exactly as before the analyzer existed.
    #[test]
    #[should_panic(expected = "does not enumerate its referenced cells")]
    fn unanalyzable_undeclared_systems_are_still_rejected() {
        #[derive(Clone, Debug)]
        struct UnboundedWriter {
            reg: Addr,
            count: i64,
        }
        impl Program for UnboundedWriter {
            fn step(&mut self, mem: &mut dyn MemOps) -> Step {
                self.count += 1;
                mem.write_register(self.reg, Value::Int(self.count));
                Step::Running
            }
            fn on_crash(&mut self) {
                self.count = 0;
            }
            fn state_key(&self) -> Value {
                Value::Int(self.count)
            }
            fn boxed_clone(&self) -> Box<dyn Program> {
                Box::new(self.clone())
            }
            fn rebind(&mut self, map: &crate::program::Rebinding) {
                self.reg = map.lookup(self.reg);
            }
        }
        let factory = || {
            let mut mem = Memory::new();
            let r0 = mem.alloc_register(Value::Bottom);
            let r1 = mem.alloc_register(Value::Bottom);
            let programs: Vec<Box<dyn Program>> = vec![
                Box::new(UnboundedWriter { reg: r0, count: 0 }),
                Box::new(UnboundedWriter { reg: r1, count: 0 }),
            ];
            let spec = SymmetrySpec::full(2)
                .with_owned_cells(0, vec![r0])
                .with_owned_cells(1, vec![r1]);
            (mem, programs, spec)
        };
        let _ = explore_symmetric(&factory, &ExploreConfig::default());
    }

    /// The dynamic cross-validation of the static independence relation
    /// accepts a genuinely independent system (disjoint write/access
    /// footprints) on both engines, with outcomes unchanged.
    #[test]
    fn cross_validation_accepts_independent_steps() {
        let factory = || {
            let mut mem = Memory::new();
            let programs: Vec<Box<dyn Program>> = (0..3)
                .map(|_| {
                    let reg = mem.alloc_register(Value::Bottom);
                    Box::new(OwnRegWriter {
                        reg,
                        input: Value::Int(1),
                        pc: 0,
                    }) as Box<dyn Program>
                })
                .collect();
            (mem, programs)
        };
        let plain = ExploreConfig {
            crash: CrashModel::independent(1).after_decide(false),
            inputs: Some(vec![Value::Int(1)]),
            ..ExploreConfig::default()
        };
        let checked = ExploreConfig {
            cross_validate_independence: true,
            ..plain.clone()
        };
        let baseline = explore(&factory, &plain);
        assert!(matches!(baseline, ExploreOutcome::Verified { .. }));
        // Threads 1 (serial engine), 2 and 8 (frontier engine): the
        // commutation assertion runs at every expanded node in each.
        for threads in [1usize, 2, 8] {
            let parallel = ExploreConfig {
                threads,
                workers_override: Some(threads),
                shards_override: Some(2),
                ..checked.clone()
            };
            assert_eq!(baseline, explore(&factory, &parallel), "threads={threads}");
        }
    }

    /// An inert owned declaration (all orbits singletons) changes
    /// nothing: the spec is trivial, so the search runs the plain
    /// engines byte-for-byte.
    #[test]
    fn owned_cells_on_singleton_orbits_are_inert() {
        let n = 2;
        let plain = || {
            let (mem, programs, _) = own_reg_factory(n);
            (mem, programs)
        };
        let inert = || {
            let (mem, programs, regs) = own_reg_factory(n);
            let mut spec = SymmetrySpec::trivial(n);
            for (p, &reg) in regs.iter().enumerate() {
                spec = spec.with_owned_cells(p, vec![reg]);
            }
            (mem, programs, spec)
        };
        let config = ExploreConfig {
            crash: CrashModel::independent(1).after_decide(true),
            ..ExploreConfig::default()
        };
        let (outcome, stats) = explore_symmetric_with_stats(&inert, &config);
        assert!(!stats.symmetry, "singleton orbits are trivial");
        assert_eq!(outcome, explore(&plain, &config));
    }

    /// The parallel engine's violation pick is deterministic across
    /// repeated runs and thread counts.
    #[test]
    fn parallel_violation_is_deterministic() {
        let factory = || {
            let mem = Memory::new();
            let programs: Vec<Box<dyn Program>> = vec![
                Box::new(DecideOwn {
                    input: Value::Int(0),
                }),
                Box::new(DecideOwn {
                    input: Value::Int(1),
                }),
                Box::new(DecideOwn {
                    input: Value::Int(2),
                }),
            ];
            (mem, programs)
        };
        let mut schedules = Vec::new();
        for threads in [2usize, 3, 4, 2, 3, 4] {
            match explore(
                &factory,
                &ExploreConfig {
                    threads,
                    ..ExploreConfig::default()
                },
            ) {
                ExploreOutcome::Violation { schedule, .. } => schedules.push(schedule),
                other => panic!("expected violation, got {other:?}"),
            }
        }
        for s in &schedules[1..] {
            assert_eq!(s, &schedules[0]);
        }
    }

    /// A spinning read loop: re-reads a register forever while it is
    /// `Bottom`. Its local-state graph is a single state with a step
    /// self-edge — the cyclic shape POR must refuse (lint condition A2).
    #[derive(Clone, Debug)]
    struct Spinner {
        addr: Addr,
    }
    impl Program for Spinner {
        fn step(&mut self, mem: &mut dyn MemOps) -> Step {
            if mem.read_register(self.addr).is_bottom() {
                Step::Running
            } else {
                Step::Decided(Value::Int(0))
            }
        }
        fn on_crash(&mut self) {}
        fn state_key(&self) -> Value {
            Value::Unit
        }
        fn boxed_clone(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
    }

    fn spinner_factory() -> (Memory, Vec<Box<dyn Program>>) {
        let mut mem = Memory::new();
        let addr = mem.alloc_register(Value::Bottom);
        (mem, vec![Box::new(Spinner { addr }) as Box<dyn Program>])
    }

    /// Processes touching one *shared* register: every step pair
    /// conflicts on it, so the persistent set is always the full
    /// enabled set and POR has nothing to prune.
    #[derive(Clone, Debug)]
    struct SharedToucher {
        addr: Addr,
        pc: u8,
    }
    impl Program for SharedToucher {
        fn step(&mut self, mem: &mut dyn MemOps) -> Step {
            if self.pc == 0 {
                mem.write_register(self.addr, Value::Int(1));
                self.pc = 1;
                Step::Running
            } else {
                Step::Decided(mem.read_register(self.addr))
            }
        }
        fn on_crash(&mut self) {
            self.pc = 0;
        }
        fn state_key(&self) -> Value {
            Value::Int(i64::from(self.pc))
        }
        fn boxed_clone(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
    }

    fn shared_toucher_factory(n: usize) -> (Memory, Vec<Box<dyn Program>>) {
        let mut mem = Memory::new();
        let addr = mem.alloc_register(Value::Bottom);
        let programs: Vec<Box<dyn Program>> = (0..n)
            .map(|_| Box::new(SharedToucher { addr, pc: 0 }) as Box<dyn Program>)
            .collect();
        (mem, programs)
    }

    /// An unbounded local-state graph (the key grows without bound):
    /// the footprint analysis exhausts its budget, so POR must refuse
    /// the system instead of running on partial footprints.
    #[derive(Clone, Debug)]
    struct UnboundedCounter {
        reg: Addr,
        count: i64,
    }
    impl Program for UnboundedCounter {
        fn step(&mut self, mem: &mut dyn MemOps) -> Step {
            self.count += 1;
            mem.write_register(self.reg, Value::Int(self.count));
            Step::Running
        }
        fn on_crash(&mut self) {
            self.count = 0;
        }
        fn state_key(&self) -> Value {
            Value::Int(self.count)
        }
        fn boxed_clone(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
    }

    fn unbounded_factory() -> (Memory, Vec<Box<dyn Program>>) {
        let mut mem = Memory::new();
        let reg = mem.alloc_register(Value::Bottom);
        (
            mem,
            vec![Box::new(UnboundedCounter { reg, count: 0 }) as Box<dyn Program>],
        )
    }

    /// POR on the fully independent own-register system: same verdict
    /// and leaf count as the unreduced search, strictly fewer states —
    /// in the serial engine and byte-identically in the frontier engine
    /// at several thread counts. (Budget 0: every node is crash-free,
    /// so the interleaving reduction is undiluted; with a live crash
    /// budget the crash-enabled layer is fully expanded by design and
    /// its crash children cover most of the crash-free layer, see the
    /// budget-1 equality check at the end.)
    #[test]
    fn por_reduces_states_and_preserves_leaves() {
        let factory = || {
            let (mem, programs, _) = own_reg_factory(3);
            (mem, programs)
        };
        let base = ExploreConfig {
            crash: CrashModel::independent(0),
            inputs: Some(vec![Value::Int(1)]),
            ..ExploreConfig::default()
        };
        let (off_states, off_leaves) = match explore(&factory, &base) {
            ExploreOutcome::Verified { states, leaves } => (states, leaves),
            other => panic!("expected verified, got {other:?}"),
        };
        let reduced = ExploreConfig {
            por: true,
            ..base.clone()
        };
        let (on, stats) = explore_with_stats(&factory, &reduced);
        assert!(stats.por, "the POR engine must report it ran");
        match &on {
            ExploreOutcome::Verified { states, leaves } => {
                assert!(
                    *states < off_states,
                    "POR must prune commuting interleavings: {states} vs {off_states}"
                );
                assert_eq!(*leaves, off_leaves, "leaf counts must stay exact");
            }
            other => panic!("expected verified, got {other:?}"),
        }
        for threads in [2usize, 8] {
            let parallel = explore(
                &factory,
                &ExploreConfig {
                    threads,
                    workers_override: Some(threads),
                    shards_override: Some(2),
                    ..reduced.clone()
                },
            );
            assert_eq!(on, parallel, "threads {threads}");
        }
        // With a live crash budget the verdict and leaf count are still
        // exact (states may not shrink: crash-enabled nodes expand
        // fully, and their crash children blanket the crash-free layer).
        let crashy = ExploreConfig {
            crash: CrashModel::independent(1).after_decide(false),
            ..base.clone()
        };
        let (c_states, c_leaves) = match explore(&factory, &crashy) {
            ExploreOutcome::Verified { states, leaves } => (states, leaves),
            other => panic!("expected verified, got {other:?}"),
        };
        match explore(
            &factory,
            &ExploreConfig {
                por: true,
                ..crashy
            },
        ) {
            ExploreOutcome::Verified { states, leaves } => {
                assert!(states <= c_states, "{states} vs {c_states}");
                assert_eq!(leaves, c_leaves, "budget-1 leaf counts must stay exact");
            }
            other => panic!("expected verified, got {other:?}"),
        }
    }

    /// POR on a fully dependent system (everyone touches one shared
    /// register): no pair of steps commutes, so the reduced search is
    /// byte-identical to the unreduced one — including the state count.
    #[test]
    fn por_is_exact_when_nothing_commutes() {
        let factory = || shared_toucher_factory(3);
        let base = ExploreConfig {
            crash: CrashModel::independent(1).after_decide(false),
            ..ExploreConfig::default()
        };
        let off = explore(&factory, &base);
        assert!(off.is_verified(), "{off:?}");
        let on = explore(
            &factory,
            &ExploreConfig {
                por: true,
                ..base.clone()
            },
        );
        assert_eq!(off, on, "a conflict-saturated system admits no pruning");
    }

    /// Truncating caps stay exact under POR — `Truncated {{ states }}`
    /// equals the cap, matching the unreduced engine's report — and the
    /// serial and frontier engines agree byte-for-byte.
    #[test]
    fn por_truncation_cap_is_exact_across_engines() {
        let factory = || {
            let (mem, programs, _) = own_reg_factory(3);
            (mem, programs)
        };
        let reduced = ExploreConfig {
            crash: CrashModel::independent(1).after_decide(false),
            inputs: Some(vec![Value::Int(1)]),
            por: true,
            ..ExploreConfig::default()
        };
        let total = match explore(&factory, &reduced) {
            ExploreOutcome::Verified { states, .. } => states,
            other => panic!("expected verified, got {other:?}"),
        };
        for cap in [1usize, total / 2, total - 1] {
            let capped = ExploreConfig {
                max_states: cap,
                ..reduced.clone()
            };
            let serial = explore(&factory, &capped);
            assert_eq!(serial, ExploreOutcome::Truncated { states: cap });
            // The unreduced engine reports the identical truncation.
            let unreduced = explore(
                &factory,
                &ExploreConfig {
                    por: false,
                    ..capped.clone()
                },
            );
            assert_eq!(serial, unreduced, "cap {cap}");
            for threads in [2usize, 8] {
                let parallel = explore(
                    &factory,
                    &ExploreConfig {
                        threads,
                        workers_override: Some(threads),
                        shards_override: Some(2),
                        ..capped.clone()
                    },
                );
                assert_eq!(serial, parallel, "cap {cap}, threads {threads}");
            }
        }
    }

    /// POR composes with full-state rebind symmetry: the combined
    /// search keeps the exact leaf count and visits fewer states than
    /// either reduction alone, byte-identically across engines.
    #[test]
    fn por_composes_with_rebind_symmetry() {
        let n = 3;
        let plain = || {
            let (mem, programs, _) = own_reg_factory(n);
            (mem, programs)
        };
        let rebind = || {
            let (mem, programs, regs) = own_reg_factory(n);
            let mut spec = SymmetrySpec::full(n);
            for (p, &reg) in regs.iter().enumerate() {
                spec = spec.with_owned_cells(p, vec![reg]);
            }
            (mem, programs, spec)
        };
        let base = ExploreConfig {
            crash: CrashModel::independent(0),
            inputs: Some(vec![Value::Int(1)]),
            ..ExploreConfig::default()
        };
        let reduced = ExploreConfig {
            por: true,
            ..base.clone()
        };
        let verified = |outcome: ExploreOutcome| match outcome {
            ExploreOutcome::Verified { states, leaves } => (states, leaves),
            other => panic!("expected verified, got {other:?}"),
        };
        let (off_states, off_leaves) = verified(explore(&plain, &base));
        let (por_states, por_leaves) = verified(explore(&plain, &reduced));
        let (sym_states, sym_leaves) = verified(explore_symmetric(&rebind, &base));
        let (combined, stats) = explore_symmetric_with_stats(&rebind, &reduced);
        assert!(stats.symmetry && stats.por);
        let (both_states, both_leaves) = verified(combined.clone());
        assert_eq!(por_leaves, off_leaves);
        assert_eq!(sym_leaves, off_leaves);
        assert_eq!(both_leaves, off_leaves, "leaves stay exact under both");
        assert!(
            both_states < por_states && both_states < sym_states,
            "the reductions must compose: por {por_states}, symmetry \
             {sym_states}, both {both_states} (unreduced {off_states})"
        );
        for threads in [2usize, 8] {
            let parallel = explore_symmetric(
                &rebind,
                &ExploreConfig {
                    threads,
                    workers_override: Some(threads),
                    shards_override: Some(2),
                    ..reduced.clone()
                },
            );
            assert_eq!(combined, parallel, "threads {threads}");
        }
    }

    /// A spinning read loop (cyclic step graph) makes the crash-free
    /// future footprints unsound, so POR is refused at search start.
    #[test]
    #[should_panic(expected = "step graph is cyclic")]
    fn por_refuses_cyclic_step_graphs() {
        let _ = explore(
            &spinner_factory,
            &ExploreConfig {
                por: true,
                ..ExploreConfig::default()
            },
        );
    }

    /// When the footprint analysis itself fails (unbounded local-state
    /// graph), POR is an explicit request that must not silently no-op.
    #[test]
    #[should_panic(expected = "footprint analysis failed")]
    fn por_refuses_unanalyzable_systems() {
        let _ = explore(
            &unbounded_factory,
            &ExploreConfig {
                por: true,
                ..ExploreConfig::default()
            },
        );
    }

    /// The ample lint passes a well-behaved independent system — with
    /// a symmetry spec (A5) and a spot-check walk that really exercises
    /// pruned pairs (A3) — and reports no warnings.
    #[test]
    fn lint_ample_passes_on_independent_systems() {
        let (mem, programs, regs) = own_reg_factory(3);
        let mut spec = SymmetrySpec::full(3);
        for (p, &reg) in regs.iter().enumerate() {
            spec = spec.with_owned_cells(p, vec![reg]);
        }
        let report = lint_ample(
            mem,
            programs,
            Some(&spec),
            &CrashModel::independent(1).after_decide(false),
            None,
            256,
        );
        assert!(report.ok(), "{:?}", report.errors);
        assert!(report.spot_states > 0, "the spot-check walk must run");
        assert!(
            report.spot_pairs > 0,
            "the walk must re-execute pruned pairs on this system"
        );
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    }

    /// The lint names the cyclic step graph (A2) the engine refuses.
    #[test]
    fn lint_ample_reports_cyclic_step_graphs() {
        let (mem, programs) = spinner_factory();
        let report = lint_ample(mem, programs, None, &CrashModel::independent(0), None, 0);
        assert!(!report.ok());
        assert!(
            report.errors.iter().any(|e| e.starts_with("A2")),
            "{:?}",
            report.errors
        );
    }

    /// The lint reports analysis failure (A1) instead of panicking.
    #[test]
    fn lint_ample_reports_unanalyzable_systems() {
        let (mem, programs) = unbounded_factory();
        let report = lint_ample(mem, programs, None, &CrashModel::independent(0), None, 0);
        assert!(!report.ok());
        assert!(
            report.errors.iter().any(|e| e.starts_with("A1")),
            "{:?}",
            report.errors
        );
    }

    /// On a conflict-saturated system the lint passes (POR is *sound*
    /// there, merely useless) but warns that nothing will be pruned.
    #[test]
    fn lint_ample_warns_when_nothing_commutes() {
        let (mem, programs) = shared_toucher_factory(2);
        let report = lint_ample(mem, programs, None, &CrashModel::independent(0), None, 64);
        assert!(report.ok(), "{:?}", report.errors);
        assert!(
            report
                .warnings
                .iter()
                .any(|w| w.contains("will not reduce")),
            "{:?}",
            report.warnings
        );
    }
}
