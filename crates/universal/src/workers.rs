//! Client workers driving sequences of operations through the universal
//! construction — with the paper's recovery function
//! ([`RUniversalWorker`]) and without it ([`HerlihyWorker`]).

use crate::layout::UniversalLayout;
use crate::machine::UniversalMachine;
use rc_runtime::{MemOps, Program, Step};
use rc_spec::{Operation, Value};
use std::fmt;
use std::sync::Arc;

/// A worker's operation list needs more per-process node slots than its
/// [`UniversalLayout`] reserves.
///
/// Returned by the checked constructors
/// ([`RUniversalWorker::try_new`], [`HerlihyWorker::try_new`]); the
/// panicking constructors and the [`HerlihyWorker`] retry path render it
/// with [`fmt::Display`], so the message is identical everywhere (the
/// two workers used to format it independently and drifted).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlotsExhausted {
    /// The process whose slots ran out.
    pub pid: usize,
    /// Node slots the worker needs (ops, plus retries for the
    /// recovery-less baseline).
    pub needed: usize,
    /// Slots the layout reserves per process.
    pub reserved: usize,
}

impl fmt::Display for SlotsExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "p{}: {} node slots needed but the layout reserves {} per \
             process; size the pool as ops + expected crashes",
            self.pid, self.needed, self.reserved
        )
    }
}

impl std::error::Error for SlotsExhausted {}

#[derive(Clone, Debug, PartialEq, Eq)]
enum WPc {
    /// The paper's `Recover` (lines 128–130): read `Announce[i]` and
    /// re-drive the last announced node. Also the cold-start entry.
    ReadAnnounce,
    /// Drive the current invocation's [`UniversalMachine`].
    RunOp,
    /// Collect this process's responses back from non-volatile memory.
    ReadBack { idx: usize },
}

/// A process that performs `ops` in order through `RUniversal`, with the
/// Fig. 7 recovery function: on every (re)start it reads `Announce[i]`
/// and finishes the last announced operation before moving on. Invocation
/// `k` always uses node `layout.node_id(pid, k)`, so re-runs are
/// idempotent and every operation is applied **exactly once** — the
/// detectability property discussed in Section 4.
///
/// The worker's output is the [`Value::List`] of its operations'
/// responses, read back from the non-volatile nodes.
pub struct RUniversalWorker {
    layout: Arc<UniversalLayout>,
    pid: usize,
    ops: Vec<Operation>,
    // Volatile state.
    pc: WPc,
    op_idx: usize,
    machine: Option<UniversalMachine>,
    responses: Vec<Value>,
}

impl RUniversalWorker {
    /// Creates the worker, checking that `ops` fits the layout's
    /// per-process node slots (invocation `k` always uses node slot `k`,
    /// so exactly `ops.len()` slots are needed — re-runs are idempotent
    /// and never consume extra slots).
    ///
    /// # Errors
    ///
    /// Returns [`SlotsExhausted`] if `ops` needs more node slots than
    /// the layout reserves per process.
    pub fn try_new(
        layout: Arc<UniversalLayout>,
        pid: usize,
        ops: Vec<Operation>,
    ) -> Result<Self, SlotsExhausted> {
        if ops.len() > layout.slots_per_process {
            return Err(SlotsExhausted {
                pid,
                needed: ops.len(),
                reserved: layout.slots_per_process,
            });
        }
        Ok(RUniversalWorker {
            layout,
            pid,
            ops,
            pc: WPc::ReadAnnounce,
            op_idx: 0,
            machine: None,
            responses: Vec::new(),
        })
    }

    /// Creates the worker.
    ///
    /// # Panics
    ///
    /// Panics (with the shared [`SlotsExhausted`] message) if `ops`
    /// needs more node slots than the layout reserves per process; use
    /// [`RUniversalWorker::try_new`] to handle it instead.
    pub fn new(layout: Arc<UniversalLayout>, pid: usize, ops: Vec<Operation>) -> Self {
        RUniversalWorker::try_new(layout, pid, ops).unwrap_or_else(|e| panic!("{e}"))
    }
}

impl fmt::Debug for RUniversalWorker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RUniversalWorker")
            .field("pid", &self.pid)
            .field("pc", &self.pc)
            .field("op_idx", &self.op_idx)
            .finish_non_exhaustive()
    }
}

impl Program for RUniversalWorker {
    fn step(&mut self, mem: &mut dyn MemOps) -> Step {
        match self.pc.clone() {
            WPc::ReadAnnounce => {
                let announced = mem.read_register(self.layout.announce[self.pid]);
                let announced = announced.as_int().expect("announce holds node ids") as usize;
                match self.layout.owner_of(announced) {
                    None => {
                        // Dummy: nothing was ever announced; cold start.
                        self.op_idx = 0;
                        self.machine = None;
                    }
                    Some((owner, slot)) => {
                        assert_eq!(owner, self.pid, "Announce[i] is written only by p_i");
                        // Re-drive the last announced operation (Recover,
                        // line 129): ApplyOperation without re-announcing.
                        self.op_idx = slot;
                        self.machine = Some(UniversalMachine::recover(
                            self.layout.clone(),
                            self.pid,
                            announced,
                            self.ops[slot].clone(),
                        ));
                    }
                }
                self.pc = WPc::RunOp;
                Step::Running
            }
            WPc::RunOp => {
                if self.op_idx >= self.ops.len() {
                    self.pc = WPc::ReadBack { idx: 0 };
                    self.responses.clear();
                    return Step::Running;
                }
                if self.machine.is_none() {
                    let node = self.layout.node_id(self.pid, self.op_idx);
                    self.machine = Some(UniversalMachine::new(
                        self.layout.clone(),
                        self.pid,
                        node,
                        self.ops[self.op_idx].clone(),
                    ));
                }
                match self.machine.as_mut().expect("just created").step(mem) {
                    Step::Running => Step::Running,
                    Step::Decided(_) => {
                        self.machine = None;
                        self.op_idx += 1;
                        Step::Running
                    }
                }
            }
            WPc::ReadBack { idx } => {
                if idx >= self.ops.len() {
                    return Step::Decided(Value::List(self.responses.clone()));
                }
                let node = self.layout.node_id(self.pid, idx);
                let resp = mem.read_register(self.layout.nodes[node].response);
                self.responses.push(resp);
                self.pc = WPc::ReadBack { idx: idx + 1 };
                Step::Running
            }
        }
    }

    fn on_crash(&mut self) {
        self.pc = WPc::ReadAnnounce;
        self.op_idx = 0;
        self.machine = None;
        self.responses.clear();
    }

    fn state_key(&self) -> Value {
        let pc = match &self.pc {
            WPc::ReadAnnounce => Value::Int(0),
            WPc::RunOp => Value::Int(1),
            WPc::ReadBack { idx } => Value::pair(Value::Int(2), Value::Int(*idx as i64)),
        };
        Value::Tuple(vec![
            pc,
            Value::Int(self.op_idx as i64),
            self.machine
                .as_ref()
                .map_or(Value::Bottom, |m| m.state_key()),
            Value::List(self.responses.clone()),
        ])
    }

    fn boxed_clone(&self) -> Box<dyn Program> {
        Box::new(RUniversalWorker {
            layout: self.layout.clone(),
            pid: self.pid,
            ops: self.ops.clone(),
            pc: self.pc.clone(),
            op_idx: self.op_idx,
            machine: self.machine.clone(),
            responses: self.responses.clone(),
        })
    }
}

/// The pre-NVM baseline: the same universal construction driven **without**
/// a recovery function. A crash makes the external client re-issue the
/// in-flight operation as a *fresh invocation* (new node), because without
/// recovery it cannot tell whether the crashed invocation took effect —
/// so a crash that strikes after the append but before the response is
/// delivered applies the operation **twice**.
///
/// The `op_idx` / `retries` counters model the *external client's*
/// knowledge (a client knows which of its requests completed, because it
/// received their responses), not process-local volatile state; the
/// process-local algorithm state (`machine`) is genuinely wiped on a
/// crash.
pub struct HerlihyWorker {
    layout: Arc<UniversalLayout>,
    pid: usize,
    ops: Vec<Operation>,
    // External-client state (survives crashes; see type docs).
    op_idx: usize,
    next_slot: usize,
    // Volatile state.
    machine: Option<UniversalMachine>,
    responses: Vec<Value>,
}

impl HerlihyWorker {
    /// Creates the worker, checking the crash-free minimum: the layout
    /// must reserve at least `ops.len()` slots (and should reserve
    /// `ops.len() + expected crashes` — retries consume extra slots at
    /// run time, where exhaustion panics with the same
    /// [`SlotsExhausted`] message).
    ///
    /// # Errors
    ///
    /// Returns [`SlotsExhausted`] if even a crash-free run could not fit.
    pub fn try_new(
        layout: Arc<UniversalLayout>,
        pid: usize,
        ops: Vec<Operation>,
    ) -> Result<Self, SlotsExhausted> {
        if ops.len() > layout.slots_per_process {
            return Err(SlotsExhausted {
                pid,
                needed: ops.len(),
                reserved: layout.slots_per_process,
            });
        }
        Ok(HerlihyWorker {
            layout,
            pid,
            ops,
            op_idx: 0,
            next_slot: 0,
            machine: None,
            responses: Vec::new(),
        })
    }

    /// Creates the worker. The layout must reserve
    /// `ops.len() + expected crashes` slots per process; retries that
    /// exhaust the reserve panic at run time.
    ///
    /// # Panics
    ///
    /// Panics (with the shared [`SlotsExhausted`] message) if `ops`
    /// cannot fit even crash-free; use [`HerlihyWorker::try_new`] to
    /// handle it instead.
    pub fn new(layout: Arc<UniversalLayout>, pid: usize, ops: Vec<Operation>) -> Self {
        HerlihyWorker::try_new(layout, pid, ops).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Node slots consumed so far (grows with retries; diagnostic).
    pub fn slots_used(&self) -> usize {
        self.next_slot
    }
}

impl fmt::Debug for HerlihyWorker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HerlihyWorker")
            .field("pid", &self.pid)
            .field("op_idx", &self.op_idx)
            .field("next_slot", &self.next_slot)
            .finish_non_exhaustive()
    }
}

impl Program for HerlihyWorker {
    fn step(&mut self, mem: &mut dyn MemOps) -> Step {
        if self.op_idx >= self.ops.len() {
            return Step::Decided(Value::List(self.responses.clone()));
        }
        if self.machine.is_none() {
            if self.next_slot >= self.layout.slots_per_process {
                // Same message as the checked constructors.
                panic!(
                    "{}",
                    SlotsExhausted {
                        pid: self.pid,
                        needed: self.next_slot + 1,
                        reserved: self.layout.slots_per_process,
                    }
                );
            }
            let node = self.layout.node_id(self.pid, self.next_slot);
            self.next_slot += 1;
            self.machine = Some(UniversalMachine::new(
                self.layout.clone(),
                self.pid,
                node,
                self.ops[self.op_idx].clone(),
            ));
        }
        match self.machine.as_mut().expect("just created").step(mem) {
            Step::Running => Step::Running,
            Step::Decided(resp) => {
                // The response reaches the external client; the operation
                // is complete from its point of view.
                self.responses.push(resp);
                self.machine = None;
                self.op_idx += 1;
                Step::Running
            }
        }
    }

    fn on_crash(&mut self) {
        // No recovery function: local algorithm state vanishes and the
        // client will retry the in-flight operation with a fresh node.
        self.machine = None;
        // Completed responses were already delivered externally; the
        // in-flight one (if any) was not — it will be re-invoked.
    }

    fn state_key(&self) -> Value {
        Value::Tuple(vec![
            Value::Int(self.op_idx as i64),
            Value::Int(self.next_slot as i64),
            self.machine
                .as_ref()
                .map_or(Value::Bottom, |m| m.state_key()),
            Value::List(self.responses.clone()),
        ])
    }

    fn boxed_clone(&self) -> Box<dyn Program> {
        Box::new(HerlihyWorker {
            layout: self.layout.clone(),
            pid: self.pid,
            ops: self.ops.clone(),
            op_idx: self.op_idx,
            next_slot: self.next_slot,
            machine: self.machine.clone(),
            responses: self.responses.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::audit_history;
    use rc_core::algorithms::ConsensusObjectFactory;
    use rc_runtime::sched::{
        Action, RandomScheduler, RandomSchedulerConfig, RoundRobin, ScriptedScheduler,
    };
    use rc_runtime::{run, CrashModel, Memory, RunOptions};
    use rc_spec::types::{Counter, Queue};

    fn counter_system(n: usize, slots: usize) -> (Memory, Arc<UniversalLayout>) {
        let mut mem = Memory::new();
        let pool = 1 + n * slots;
        let layout = UniversalLayout::alloc(
            &mut mem,
            Arc::new(Counter::new(1024)),
            Value::Int(0),
            n,
            slots,
            &ConsensusObjectFactory {
                domain: pool as u32,
            },
        );
        (mem, layout)
    }

    #[test]
    fn runiversal_crash_free_applies_all_ops() {
        let n = 3;
        let ops_per = 4;
        let (mut mem, layout) = counter_system(n, ops_per);
        let mut programs: Vec<Box<dyn Program>> = (0..n)
            .map(|pid| {
                Box::new(RUniversalWorker::new(
                    layout.clone(),
                    pid,
                    vec![Operation::nullary("inc"); ops_per],
                )) as Box<dyn Program>
            })
            .collect();
        let exec = run(
            &mut mem,
            &mut programs,
            &mut RoundRobin::new(),
            RunOptions::default(),
        );
        assert!(exec.all_decided);
        let report = audit_history(&mem, &layout).expect("history is linearizable");
        assert_eq!(report.order.len(), n * ops_per);
        assert_eq!(report.final_state, Value::Int((n * ops_per) as i64));
        for pid in 0..n {
            assert_eq!(report.applied_per_pid[pid], ops_per, "exactly once");
        }
    }

    #[test]
    fn runiversal_exactly_once_under_random_crashes() {
        let n = 3;
        let ops_per = 3;
        for seed in 0..120 {
            let (mut mem, layout) = counter_system(n, ops_per);
            let mut programs: Vec<Box<dyn Program>> = (0..n)
                .map(|pid| {
                    Box::new(RUniversalWorker::new(
                        layout.clone(),
                        pid,
                        vec![Operation::nullary("inc"); ops_per],
                    )) as Box<dyn Program>
                })
                .collect();
            let mut sched = RandomScheduler::new(RandomSchedulerConfig {
                seed,
                crash_prob: 0.03,
                // Post-decide crashes would re-run ReadBack only, which is
                // harmless; include them.
                crash: CrashModel::independent(4).after_decide(true),
            });
            let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
            assert!(exec.all_decided, "seed={seed}");
            let report =
                audit_history(&mem, &layout).unwrap_or_else(|e| panic!("seed={seed}: {e}"));
            assert_eq!(
                report.order.len(),
                n * ops_per,
                "seed={seed}: every op exactly once despite {} crashes",
                exec.crashes
            );
            assert_eq!(report.final_state, Value::Int((n * ops_per) as i64));
        }
    }

    #[test]
    fn runiversal_responses_are_read_back_consistently() {
        // A FIFO queue: p0 enqueues 1..3, p1 dequeues 3 times. All
        // responses must be consistent with the audited linearization.
        let mut mem = Memory::new();
        let slots = 3;
        let pool = 1 + 2 * slots;
        let layout = UniversalLayout::alloc(
            &mut mem,
            Arc::new(Queue::new(8, 4)),
            Value::empty_list(),
            2,
            slots,
            &ConsensusObjectFactory {
                domain: pool as u32,
            },
        );
        let enqs: Vec<Operation> = (1..=3)
            .map(|v| Operation::new("enq", Value::Int(v)))
            .collect();
        let deqs = vec![Operation::nullary("deq"); 3];
        let mut programs: Vec<Box<dyn Program>> = vec![
            Box::new(RUniversalWorker::new(layout.clone(), 0, enqs)),
            Box::new(RUniversalWorker::new(layout.clone(), 1, deqs)),
        ];
        let exec = run(
            &mut mem,
            &mut programs,
            &mut RoundRobin::new(),
            RunOptions::default(),
        );
        assert!(exec.all_decided);
        let report = audit_history(&mem, &layout).expect("linearizable");
        assert_eq!(report.order.len(), 6);
        // The dequeuer's outputs must be a subsequence of ⊥/1/2/3 values
        // consistent with FIFO order — the audit already replayed them;
        // here we check the worker's decided list matches the audit.
        let Value::List(deq_resps) = &exec.outputs[1][0] else {
            panic!("worker decides a response list")
        };
        assert_eq!(deq_resps.len(), 3);
    }

    #[test]
    fn herlihy_duplicates_under_a_targeted_crash() {
        // One process, one logical increment, plus a crash placed right
        // after the append but before the client reads the response: the
        // retry applies the increment a second time.
        let (mut mem, layout) = counter_system(1, 2);
        let mut programs: Vec<Box<dyn Program>> = vec![Box::new(HerlihyWorker::new(
            layout.clone(),
            0,
            vec![Operation::nullary("inc")],
        ))];
        // Cold start: WriteNodeOp, WriteAnnounce, ScanHead(0), ScanSeq,
        // ScanHead(1)→WriteHeadBest, ReadOwnSeq, ReadHead, ReadHeadSeq,
        // ReadPriorityAnnounce, ReadPrioritySeq, RunRc, ReadWinnerOp,
        // ReadHeadState, WriteWinnerState, WriteWinnerResponse,
        // WriteWinnerSeq ← the append lands here; crash before the
        // machine's ReadOwnSeq/ReadResponse delivers the response.
        let steps_to_append = 17;
        let mut schedule: Vec<Action> = std::iter::repeat(Action::Step(0))
            .take(steps_to_append)
            .collect();
        schedule.push(Action::Crash(0));
        let mut sched = ScriptedScheduler::then_finish(schedule);
        let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
        assert!(exec.all_decided);
        let report = audit_history(&mem, &layout).expect("list is still well-formed");
        assert_eq!(
            report.applied_per_pid[0], 2,
            "the increment was applied twice: once by the crashed \
             invocation, once by the retry"
        );
        assert_eq!(report.final_state, Value::Int(2), "counter over-counts");
    }

    #[test]
    fn runiversal_immune_to_the_same_targeted_crash() {
        let (mut mem, layout) = counter_system(1, 2);
        let mut programs: Vec<Box<dyn Program>> = vec![Box::new(RUniversalWorker::new(
            layout.clone(),
            0,
            vec![Operation::nullary("inc")],
        ))];
        // Same crash placement as the Herlihy test (offset by one for the
        // worker's initial ReadAnnounce step).
        let mut schedule: Vec<Action> = std::iter::repeat(Action::Step(0)).take(18).collect();
        schedule.push(Action::Crash(0));
        let mut sched = ScriptedScheduler::then_finish(schedule);
        let exec = run(&mut mem, &mut programs, &mut sched, RunOptions::default());
        assert!(exec.all_decided);
        let report = audit_history(&mem, &layout).expect("linearizable");
        assert_eq!(report.applied_per_pid[0], 1, "exactly once");
        assert_eq!(report.final_state, Value::Int(1));
    }

    #[test]
    fn herlihy_crash_free_is_correct() {
        let n = 2;
        let (mut mem, layout) = counter_system(n, 3);
        let mut programs: Vec<Box<dyn Program>> = (0..n)
            .map(|pid| {
                Box::new(HerlihyWorker::new(
                    layout.clone(),
                    pid,
                    vec![Operation::nullary("inc"); 3],
                )) as Box<dyn Program>
            })
            .collect();
        let exec = run(
            &mut mem,
            &mut programs,
            &mut RoundRobin::new(),
            RunOptions::default(),
        );
        assert!(exec.all_decided);
        let report = audit_history(&mem, &layout).expect("linearizable");
        assert_eq!(report.final_state, Value::Int(6));
    }

    /// Regression: `RUniversalWorker::new` used to panic on oversized op
    /// lists with a message that drifted from `HerlihyWorker`'s runtime
    /// exhaustion panic. Both constructors now return the same
    /// [`SlotsExhausted`] error through `try_new`, and the panic message
    /// is the error's single `Display` rendering.
    #[test]
    fn checked_constructors_reject_oversized_op_lists_identically() {
        let slots = 2;
        let (_, layout) = counter_system(2, slots);
        let ops = vec![Operation::nullary("inc"); slots + 1];
        let r = RUniversalWorker::try_new(layout.clone(), 0, ops.clone())
            .expect_err("3 ops cannot fit 2 slots");
        let h = HerlihyWorker::try_new(layout.clone(), 0, ops.clone())
            .expect_err("3 ops cannot fit 2 slots");
        assert_eq!(r, h, "both workers report the identical error");
        assert_eq!(
            r.to_string(),
            "p0: 3 node slots needed but the layout reserves 2 per \
             process; size the pool as ops + expected crashes"
        );
        // Fitting lists construct fine through both paths.
        let ok = vec![Operation::nullary("inc"); slots];
        assert!(RUniversalWorker::try_new(layout.clone(), 0, ok.clone()).is_ok());
        assert!(HerlihyWorker::try_new(layout, 0, ok).is_ok());
    }

    #[test]
    #[should_panic(expected = "p1: 3 node slots needed but the layout reserves 2")]
    fn runiversal_new_panics_with_the_shared_message() {
        let (_, layout) = counter_system(2, 2);
        let _ = RUniversalWorker::new(layout, 1, vec![Operation::nullary("inc"); 3]);
    }

    #[test]
    #[should_panic(expected = "node slots needed but the layout reserves")]
    fn herlihy_runtime_exhaustion_uses_the_shared_message() {
        // 1 slot, 1 op: a crash mid-operation forces a retry that needs
        // a second slot — the runtime exhaustion path.
        let (mut mem, layout) = counter_system(1, 1);
        let mut worker = HerlihyWorker::new(layout, 0, vec![Operation::nullary("inc")]);
        // Step once (announce/claim work begins), crash, then re-run
        // until the fresh invocation asks for the second slot.
        for _ in 0..200 {
            let _ = worker.step(&mut mem);
            worker.on_crash();
        }
    }
}
