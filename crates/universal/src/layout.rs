//! The non-volatile data layout of the universal construction (Fig. 7,
//! lines 97–99 and the list-node description of Appendix F).

use rc_core::algorithms::{ConsensusFactory, InstanceMaker};
use rc_runtime::{Addr, Memory};
use rc_spec::{Operation, TypeHandle, Value};
use std::fmt;
use std::sync::Arc;

/// Encodes an [`Operation`] as a [`Value`] for storage in a node's `op`
/// register.
pub fn encode_op(op: &Operation) -> Value {
    Value::pair(Value::sym(op.name.clone()), op.arg.clone())
}

/// Decodes a node's `op` register back into an [`Operation`].
///
/// # Panics
///
/// Panics if `value` was not produced by [`encode_op`] — indicates memory
/// corruption, which the simulator cannot produce.
pub fn decode_op(value: &Value) -> Operation {
    let parts = value
        .as_tuple()
        .filter(|p| p.len() == 2)
        .unwrap_or_else(|| panic!("not an encoded operation: {value}"));
    let name = parts[0]
        .as_sym()
        .unwrap_or_else(|| panic!("not an encoded operation: {value}"));
    Operation::new(name, parts[1].clone())
}

/// The shared cells of one list node (Appendix F):
/// `seq` (0 until appended, then the node's list position), `op`,
/// `newState`, `response`, and the RC instance deciding `next`.
#[derive(Clone)]
pub struct NodeCells {
    /// The node's position in the list; 0 while unappended. The dummy node
    /// has `seq = 1`.
    pub seq: Addr,
    /// The encoded operation ([`encode_op`]).
    pub op: Addr,
    /// State of the implemented object after applying the list prefix up
    /// to and including this node.
    pub new_state: Addr,
    /// The operation's response.
    pub response: Addr,
    /// Builds a process's routine for this node's `next`-pointer RC
    /// instance; proposals and decisions are node ids as [`Value::Int`].
    pub next: InstanceMaker,
}

impl fmt::Debug for NodeCells {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NodeCells")
            .field("seq", &self.seq)
            .field("op", &self.op)
            .finish_non_exhaustive()
    }
}

/// The complete non-volatile layout of one universal object.
pub struct UniversalLayout {
    /// The implemented object's sequential specification.
    pub ty: TypeHandle,
    /// The implemented object's initial state (stored in the dummy node's
    /// `newState`).
    pub initial_state: Value,
    /// Number of processes.
    pub n: usize,
    /// Node 0 is the dummy; process `p`'s invocation `k` uses node
    /// `1 + p·slots_per_process + k`.
    pub nodes: Vec<NodeCells>,
    /// Nodes available to each process.
    pub slots_per_process: usize,
    /// `Announce[0..n]`, each initially the dummy node id 0.
    pub announce: Vec<Addr>,
    /// `Head[0..n]`, each initially the dummy node id 0.
    pub head: Vec<Addr>,
}

impl fmt::Debug for UniversalLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UniversalLayout")
            .field("ty", &self.ty.name())
            .field("n", &self.n)
            .field("nodes", &self.nodes.len())
            .finish_non_exhaustive()
    }
}

impl UniversalLayout {
    /// Allocates the layout: a dummy-headed node pool with
    /// `slots_per_process` nodes per process, announce/head arrays, and
    /// one RC instance per node.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `slots_per_process == 0`.
    pub fn alloc(
        mem: &mut Memory,
        ty: TypeHandle,
        initial_state: Value,
        n: usize,
        slots_per_process: usize,
        rc_factory: &dyn ConsensusFactory,
    ) -> Arc<Self> {
        assert!(n > 0, "need at least one process");
        assert!(slots_per_process > 0, "need at least one slot per process");
        let pool = 1 + n * slots_per_process;
        let mut nodes = Vec::with_capacity(pool);
        for id in 0..pool {
            let seq = mem.alloc_register(Value::Int(i64::from(id == 0)));
            let op = mem.alloc_register(Value::Bottom);
            let new_state = mem.alloc_register(if id == 0 {
                initial_state.clone()
            } else {
                Value::Bottom
            });
            let response = mem.alloc_register(Value::Bottom);
            let next = rc_factory.alloc_instance(mem);
            nodes.push(NodeCells {
                seq,
                op,
                new_state,
                response,
                next,
            });
        }
        let announce = (0..n).map(|_| mem.alloc_register(Value::Int(0))).collect();
        let head = (0..n).map(|_| mem.alloc_register(Value::Int(0))).collect();
        Arc::new(UniversalLayout {
            ty,
            initial_state,
            n,
            nodes,
            slots_per_process,
            announce,
            head,
        })
    }

    /// The node id for process `pid`'s invocation `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` or `slot` is out of range.
    pub fn node_id(&self, pid: usize, slot: usize) -> usize {
        assert!(pid < self.n, "pid out of range");
        assert!(slot < self.slots_per_process, "slot out of range");
        1 + pid * self.slots_per_process + slot
    }

    /// The owner `(pid, slot)` of a node id (the dummy has no owner).
    pub fn owner_of(&self, node_id: usize) -> Option<(usize, usize)> {
        if node_id == 0 || node_id >= self.nodes.len() {
            return None;
        }
        let idx = node_id - 1;
        Some((idx / self.slots_per_process, idx % self.slots_per_process))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_core::algorithms::ConsensusObjectFactory;
    use rc_spec::types::Counter;

    #[test]
    fn encode_decode_round_trip() {
        let op = Operation::new("enq", Value::Int(3));
        assert_eq!(decode_op(&encode_op(&op)), op);
        let nullary = Operation::nullary("deq");
        assert_eq!(decode_op(&encode_op(&nullary)), nullary);
    }

    #[test]
    fn layout_ids_are_consistent() {
        let mut mem = Memory::new();
        let layout = UniversalLayout::alloc(
            &mut mem,
            Arc::new(Counter::new(16)),
            Value::Int(0),
            3,
            4,
            &ConsensusObjectFactory { domain: 16 },
        );
        assert_eq!(layout.nodes.len(), 13);
        for pid in 0..3 {
            for slot in 0..4 {
                let id = layout.node_id(pid, slot);
                assert_eq!(layout.owner_of(id), Some((pid, slot)));
            }
        }
        assert_eq!(layout.owner_of(0), None);
        assert_eq!(layout.owner_of(99), None);
        // Dummy node: seq = 1, newState = initial state.
        assert_eq!(mem.peek(layout.nodes[0].seq), Value::Int(1));
        assert_eq!(mem.peek(layout.nodes[0].new_state), Value::Int(0));
        // Fresh node: seq = 0.
        assert_eq!(mem.peek(layout.nodes[1].seq), Value::Int(0));
    }

    #[test]
    #[should_panic(expected = "not an encoded operation")]
    fn decode_rejects_garbage() {
        decode_op(&Value::Int(3));
    }
}
