//! `Universal(op)` and `ApplyOperation` (Fig. 7, lines 100–127) as a
//! crashable state machine.

use crate::layout::{decode_op, encode_op, UniversalLayout};
use rc_runtime::{MemOps, Program, Step};
use rc_spec::{ObjectType, Operation, Value};
use std::fmt;
use std::sync::Arc;

/// Program counter of [`UniversalMachine`]; paper line numbers in comments.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Pc {
    // ---- Universal(op), lines 117–120 ----
    /// Line 118: nd→op ← op.
    WriteNodeOp,
    /// Line 120: Announce[i] ← nd.
    WriteAnnounce,
    // ---- lines 121–125: freshen Head[i] ----
    /// Read `Head[j]` (then its seq).
    ScanHead { j: usize },
    /// Read `nodes[candidate].seq`, update the running max.
    ScanSeq { j: usize, candidate: usize },
    /// Line 123 (folded): Head[i] ← argmax.
    WriteHeadBest,
    // ---- ApplyOperation, lines 100–114 ----
    /// Line 101: read own node's seq; exit the loop when ≠ 0.
    ReadOwnSeq,
    /// Line 114: read own node's response and decide.
    ReadResponse,
    /// Read `Head[i]`.
    ReadHead,
    /// Read `nodes[head].seq` (for line 102's priority and line 111).
    ReadHeadSeq { head: usize },
    /// Line 103–104: read `Announce[priority]`.
    ReadPriorityAnnounce { head: usize, head_seq: i64 },
    /// Line 103: read the announced node's seq to see if it needs help.
    ReadPrioritySeq {
        head: usize,
        head_seq: i64,
        announced: usize,
    },
    /// Line 108: drive the RC instance of `nodes[head].next`.
    RunRc {
        head: usize,
        head_seq: i64,
        pointer: usize,
    },
    /// Line 110 (first half): read the winner's op.
    ReadWinnerOp {
        head: usize,
        head_seq: i64,
        winner: usize,
    },
    /// Line 110 (second half): read `Head[i]→newState`, apply
    /// sequentially, write `winner→newState`.
    ReadHeadState {
        head: usize,
        head_seq: i64,
        winner: usize,
        winner_op: Operation,
    },
    /// Line 110: write `winner→newState`.
    WriteWinnerState {
        head_seq: i64,
        winner: usize,
        new_state: Value,
        response: Value,
    },
    /// Line 110: write `winner→response`.
    WriteWinnerResponse {
        head_seq: i64,
        winner: usize,
        response: Value,
    },
    /// Line 111: `winner→seq ← Head[i]→seq + 1`.
    WriteWinnerSeq { head_seq: i64, winner: usize },
    /// Line 112: `Head[i] ← winner`.
    AdvanceHead { winner: usize },
}

/// One `Universal(op)` invocation for one process, bound to a fixed node
/// id — the paper's `nd`. Restarting the machine from the beginning after
/// a crash is safe because the node id is stable and every prefix write
/// (`nd→op`, `Announce[i]`) is idempotent.
///
/// The machine can also be started in *recovery mode*
/// ([`UniversalMachine::recover`]): it skips the announce prefix and runs
/// `ApplyOperation` directly — exactly the paper's `Recover` routine
/// (lines 128–130).
pub struct UniversalMachine {
    layout: Arc<UniversalLayout>,
    pid: usize,
    node_id: usize,
    op: Operation,
    pc: Pc,
    /// Running maximum for the Head freshening scan.
    best: (usize, i64),
    inner: Option<Box<dyn Program>>,
}

impl Clone for UniversalMachine {
    fn clone(&self) -> Self {
        UniversalMachine {
            layout: self.layout.clone(),
            pid: self.pid,
            node_id: self.node_id,
            op: self.op.clone(),
            pc: self.pc.clone(),
            best: self.best,
            inner: self.inner.clone(),
        }
    }
}

impl fmt::Debug for UniversalMachine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UniversalMachine")
            .field("pid", &self.pid)
            .field("node_id", &self.node_id)
            .field("op", &self.op)
            .field("pc", &self.pc)
            .finish_non_exhaustive()
    }
}

impl UniversalMachine {
    /// Starts a fresh invocation (`Universal(op)`, line 116).
    ///
    /// # Panics
    ///
    /// Panics if `pid` or `node_id` is out of range for the layout.
    pub fn new(layout: Arc<UniversalLayout>, pid: usize, node_id: usize, op: Operation) -> Self {
        assert!(pid < layout.n, "pid out of range");
        assert!(
            node_id > 0 && node_id < layout.nodes.len(),
            "node id out of range"
        );
        UniversalMachine {
            layout,
            pid,
            node_id,
            op,
            pc: Pc::WriteNodeOp,
            best: (0, 0),
            inner: None,
        }
    }

    /// Starts in recovery mode (`Recover`, lines 128–130): runs
    /// `ApplyOperation` for the already-announced `node_id` without
    /// re-announcing.
    pub fn recover(
        layout: Arc<UniversalLayout>,
        pid: usize,
        node_id: usize,
        op: Operation,
    ) -> Self {
        let mut m = UniversalMachine::new(layout, pid, node_id, op);
        m.pc = Pc::ReadOwnSeq;
        m
    }

    fn node(&self, id: usize) -> &crate::layout::NodeCells {
        &self.layout.nodes[id]
    }

    fn seq_of(v: &Value) -> i64 {
        v.as_int().expect("seq registers hold ints")
    }

    fn ptr_of(v: &Value) -> usize {
        usize::try_from(v.as_int().expect("pointer registers hold ints"))
            .expect("pointers are non-negative")
    }
}

impl Program for UniversalMachine {
    fn step(&mut self, mem: &mut dyn MemOps) -> Step {
        match self.pc.clone() {
            Pc::WriteNodeOp => {
                mem.write_register(self.node(self.node_id).op, encode_op(&self.op));
                self.pc = Pc::WriteAnnounce;
                Step::Running
            }
            Pc::WriteAnnounce => {
                mem.write_register(
                    self.layout.announce[self.pid],
                    Value::Int(self.node_id as i64),
                );
                self.best = (0, 0);
                self.pc = Pc::ScanHead { j: 0 };
                Step::Running
            }
            Pc::ScanHead { j } => {
                if j >= self.layout.n {
                    self.pc = Pc::WriteHeadBest;
                    return Step::Running;
                }
                let candidate = Self::ptr_of(&mem.read_register(self.layout.head[j]));
                self.pc = Pc::ScanSeq { j, candidate };
                Step::Running
            }
            Pc::ScanSeq { j, candidate } => {
                let seq = Self::seq_of(&mem.read_register(self.node(candidate).seq));
                if seq > self.best.1 {
                    self.best = (candidate, seq);
                }
                self.pc = Pc::ScanHead { j: j + 1 };
                Step::Running
            }
            Pc::WriteHeadBest => {
                mem.write_register(self.layout.head[self.pid], Value::Int(self.best.0 as i64));
                self.pc = Pc::ReadOwnSeq;
                Step::Running
            }
            Pc::ReadOwnSeq => {
                // Line 101: while Announce[i]→seq = 0.
                let seq = Self::seq_of(&mem.read_register(self.node(self.node_id).seq));
                self.pc = if seq == 0 {
                    Pc::ReadHead
                } else {
                    Pc::ReadResponse
                };
                Step::Running
            }
            Pc::ReadResponse => {
                // Line 114.
                Step::Decided(mem.read_register(self.node(self.node_id).response))
            }
            Pc::ReadHead => {
                let head = Self::ptr_of(&mem.read_register(self.layout.head[self.pid]));
                self.pc = Pc::ReadHeadSeq { head };
                Step::Running
            }
            Pc::ReadHeadSeq { head } => {
                let head_seq = Self::seq_of(&mem.read_register(self.node(head).seq));
                self.pc = Pc::ReadPriorityAnnounce { head, head_seq };
                Step::Running
            }
            Pc::ReadPriorityAnnounce { head, head_seq } => {
                // Line 102: priority = (Head[i]→seq + 1) mod n.
                let priority = ((head_seq + 1) % self.layout.n as i64) as usize;
                let announced = Self::ptr_of(&mem.read_register(self.layout.announce[priority]));
                self.pc = Pc::ReadPrioritySeq {
                    head,
                    head_seq,
                    announced,
                };
                Step::Running
            }
            Pc::ReadPrioritySeq {
                head,
                head_seq,
                announced,
            } => {
                // Lines 103–107.
                let seq = Self::seq_of(&mem.read_register(self.node(announced).seq));
                let pointer = if seq == 0 { announced } else { self.node_id };
                self.pc = Pc::RunRc {
                    head,
                    head_seq,
                    pointer,
                };
                Step::Running
            }
            Pc::RunRc {
                head,
                head_seq,
                pointer,
            } => {
                // Line 108: winner ← Decide(Head[i]→next, pointer).
                if self.inner.is_none() {
                    self.inner = Some((self.node(head).next)(self.pid, Value::Int(pointer as i64)));
                }
                match self.inner.as_mut().expect("just created").step(mem) {
                    Step::Running => Step::Running,
                    Step::Decided(v) => {
                        self.inner = None;
                        self.pc = Pc::ReadWinnerOp {
                            head,
                            head_seq,
                            winner: Self::ptr_of(&v),
                        };
                        Step::Running
                    }
                }
            }
            Pc::ReadWinnerOp {
                head,
                head_seq,
                winner,
            } => {
                let winner_op = decode_op(&mem.read_register(self.node(winner).op));
                self.pc = Pc::ReadHeadState {
                    head,
                    head_seq,
                    winner,
                    winner_op,
                };
                Step::Running
            }
            Pc::ReadHeadState {
                head,
                head_seq,
                winner,
                winner_op,
            } => {
                // Line 110: sequential application — deterministic, so
                // concurrent helpers write identical values.
                let state = mem.read_register(self.node(head).new_state);
                let t = self.layout.ty.apply(&state, &winner_op);
                self.pc = Pc::WriteWinnerState {
                    head_seq,
                    winner,
                    new_state: t.next,
                    response: t.response,
                };
                Step::Running
            }
            Pc::WriteWinnerState {
                head_seq,
                winner,
                new_state,
                response,
            } => {
                mem.write_register(self.node(winner).new_state, new_state);
                self.pc = Pc::WriteWinnerResponse {
                    head_seq,
                    winner,
                    response,
                };
                Step::Running
            }
            Pc::WriteWinnerResponse {
                head_seq,
                winner,
                response,
            } => {
                mem.write_register(self.node(winner).response, response);
                self.pc = Pc::WriteWinnerSeq { head_seq, winner };
                Step::Running
            }
            Pc::WriteWinnerSeq { head_seq, winner } => {
                // Line 111.
                mem.write_register(self.node(winner).seq, Value::Int(head_seq + 1));
                self.pc = Pc::AdvanceHead { winner };
                Step::Running
            }
            Pc::AdvanceHead { winner } => {
                // Line 112, then back to the line-101 test.
                mem.write_register(self.layout.head[self.pid], Value::Int(winner as i64));
                self.pc = Pc::ReadOwnSeq;
                Step::Running
            }
        }
    }

    fn on_crash(&mut self) {
        // A worker decides crash policy (fresh node vs recovery); the bare
        // machine restarts its own invocation from the beginning, which is
        // idempotent for a fixed node id.
        self.pc = Pc::WriteNodeOp;
        self.best = (0, 0);
        self.inner = None;
    }

    fn state_key(&self) -> Value {
        // The Pc enum carries all volatile locals; encode it structurally.
        let pc = format!("{:?}", self.pc);
        Value::Tuple(vec![
            Value::Sym(pc),
            Value::Int(self.best.0 as i64),
            Value::Int(self.best.1),
            self.inner.as_ref().map_or(Value::Bottom, |p| p.state_key()),
        ])
    }

    fn boxed_clone(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_core::algorithms::ConsensusObjectFactory;
    use rc_runtime::sched::RoundRobin;
    use rc_runtime::{run, Memory, RunOptions};
    use rc_spec::types::Counter;

    fn counter_layout(mem: &mut Memory, n: usize, slots: usize) -> Arc<UniversalLayout> {
        let pool = 1 + n * slots;
        UniversalLayout::alloc(
            mem,
            Arc::new(Counter::new(64)),
            Value::Int(0),
            n,
            slots,
            &ConsensusObjectFactory {
                domain: pool as u32,
            },
        )
    }

    #[test]
    fn single_process_single_op() {
        let mut mem = Memory::new();
        let layout = counter_layout(&mut mem, 1, 1);
        let node = layout.node_id(0, 0);
        let mut programs: Vec<Box<dyn Program>> = vec![Box::new(UniversalMachine::new(
            layout.clone(),
            0,
            node,
            Operation::nullary("inc"),
        ))];
        let exec = run(
            &mut mem,
            &mut programs,
            &mut RoundRobin::new(),
            RunOptions::default(),
        );
        assert!(exec.all_decided);
        assert_eq!(exec.outputs[0], vec![Value::Unit]);
        // The node was appended at position 2 and the state advanced.
        assert_eq!(mem.peek(layout.nodes[node].seq), Value::Int(2));
        assert_eq!(mem.peek(layout.nodes[node].new_state), Value::Int(1));
    }

    #[test]
    fn three_processes_each_increment_once() {
        let mut mem = Memory::new();
        let layout = counter_layout(&mut mem, 3, 1);
        let mut programs: Vec<Box<dyn Program>> = (0..3)
            .map(|pid| {
                Box::new(UniversalMachine::new(
                    layout.clone(),
                    pid,
                    layout.node_id(pid, 0),
                    Operation::nullary("inc"),
                )) as Box<dyn Program>
            })
            .collect();
        let exec = run(
            &mut mem,
            &mut programs,
            &mut RoundRobin::new(),
            RunOptions::default(),
        );
        assert!(exec.all_decided);
        // All three increments applied: some node holds state 3 at seq 4.
        let final_state: Vec<i64> = (1..4)
            .map(|id| {
                mem.peek(layout.nodes[layout.node_id(id - 1, 0)].new_state)
                    .as_int()
                    .expect("int state")
            })
            .collect();
        assert!(final_state.contains(&3), "states: {final_state:?}");
    }

    #[test]
    fn recovery_mode_skips_announce() {
        let mut mem = Memory::new();
        let layout = counter_layout(&mut mem, 1, 1);
        let node = layout.node_id(0, 0);
        let m = UniversalMachine::recover(layout.clone(), 0, node, Operation::nullary("inc"));
        // Recovery starts at the ApplyOperation loop, not the announce.
        assert!(format!("{m:?}").contains("ReadOwnSeq"));
    }
}
