//! # rc-universal — the recoverable universal construction (Section 4)
//!
//! Herlihy's universality theorem says consensus plus registers suffices to
//! build a wait-free linearizable implementation of *any* object type.
//! Section 4 of *“When Is Recoverable Consensus Harder Than Consensus?”*
//! (PODC 2022) carries this over to non-volatile memory with independent
//! crashes: place the operation list in non-volatile memory, use
//! **recoverable consensus** to agree on each `next` pointer, and add a
//! recovery function that re-drives the last announced operation
//! (`RUniversal`, the paper's Fig. 7, lines 97–130).
//!
//! This crate implements:
//!
//! * [`UniversalLayout`] — the non-volatile data: the dummy-headed
//!   operation list (a preallocated node pool), `Announce[1..n]`,
//!   `Head[1..n]`, and one pluggable RC instance per node for its `next`
//!   pointer.
//! * [`UniversalMachine`] — the `Universal(op)` + `ApplyOperation`
//!   routines as a crashable state machine (one shared-memory access per
//!   step), including the round-robin helping that makes the construction
//!   wait-free.
//! * [`RUniversalWorker`] — a process performing a sequence of operations
//!   with the paper's recovery function: on a crash it consults
//!   `Announce[i]` and re-drives the last announced node, so every
//!   operation is applied **exactly once** (the detectability property of
//!   nesting-safe recoverable linearizability).
//! * [`HerlihyWorker`] — the same construction driven *without* a recovery
//!   function (the pre-NVM baseline): a crashed client retries with a
//!   fresh node, so crashes can apply an operation **twice** — the failure
//!   mode the recovery function exists to prevent, demonstrated in the E6
//!   experiment.
//! * [`audit_history`] — a replay checker: the `seq` fields define the
//!   linearization; every node's stored state/response must match a
//!   sequential replay, and each announced invocation must be applied at
//!   most/exactly once.
//!
//! The per-node RC instances are pluggable via
//! [`rc_core::algorithms::ConsensusFactory`]; experiments use atomic
//! consensus objects for scale and the Fig. 2 tournament over `S_n` to
//! demonstrate end-to-end universality from a *weak* recording type.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod check;
mod layout;
mod machine;
mod robj;
mod workers;

pub use check::{audit_history, AuditError, HistoryReport};
pub use layout::{decode_op, encode_op, NodeCells, UniversalLayout};
pub use machine::UniversalMachine;
pub use robj::{run_workload, Workload, WorkloadOutcome};
pub use workers::{HerlihyWorker, RUniversalWorker, SlotsExhausted};
