//! High-level recoverable objects: run a whole workload through
//! `RUniversal` and audit the result in one call.
//!
//! This is the downstream-user face of Section 4: pick any sequential
//! specification from `rc-spec`, a per-process operation workload, and an
//! RC factory; get back the execution and the sequential-replay audit.

use crate::check::{audit_history, AuditError, HistoryReport};
use crate::layout::UniversalLayout;
use crate::workers::RUniversalWorker;
use rc_core::algorithms::ConsensusFactory;
use rc_runtime::sched::Scheduler;
use rc_runtime::{run, Execution, Memory, Program, RunOptions};
use rc_spec::{Operation, TypeHandle, Value};

/// A per-process operation workload for one recoverable object.
#[derive(Clone, Debug, Default)]
pub struct Workload {
    /// `ops[p]` — the operations process `p` performs, in order.
    pub ops: Vec<Vec<Operation>>,
}

impl Workload {
    /// A workload where every one of `n` processes performs `ops`.
    pub fn uniform(n: usize, ops: Vec<Operation>) -> Self {
        Workload { ops: vec![ops; n] }
    }

    /// `producers` processes enqueue distinct values; `consumers`
    /// processes dequeue; everyone performs `per_process` operations.
    pub fn queue(producers: usize, consumers: usize, per_process: usize) -> Self {
        let mut ops = Vec::new();
        for p in 0..producers {
            ops.push(
                (0..per_process)
                    .map(|k| Operation::new("enq", Value::Int((p * per_process + k) as i64)))
                    .collect(),
            );
        }
        for _ in 0..consumers {
            ops.push(vec![Operation::nullary("deq"); per_process]);
        }
        Workload { ops }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.ops.len()
    }

    /// Largest per-process operation count (the layout's slot requirement).
    pub fn max_ops(&self) -> usize {
        self.ops.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// The result of [`run_workload`].
#[derive(Debug)]
pub struct WorkloadOutcome {
    /// The raw execution (trace, crash counts, per-worker response lists).
    pub execution: Execution,
    /// The sequential-replay audit of the final non-volatile history.
    pub audit: Result<HistoryReport, AuditError>,
    /// Expected number of applied operations (for exactly-once checks).
    pub expected_ops: usize,
}

impl WorkloadOutcome {
    /// Whether the history is linearizable and every operation was applied
    /// exactly once.
    pub fn is_exactly_once(&self) -> bool {
        matches!(&self.audit, Ok(report) if report.order.len() == self.expected_ops)
    }
}

/// Runs `workload` against a fresh recoverable object of type `ty`
/// (initial state `q0`) built on `RUniversal` with `rc_factory` deciding
/// the `next` pointers, under `sched`.
pub fn run_workload(
    ty: TypeHandle,
    q0: Value,
    workload: &Workload,
    rc_factory: &dyn ConsensusFactory,
    sched: &mut dyn Scheduler,
) -> WorkloadOutcome {
    let n = workload.n();
    let slots = workload.max_ops().max(1);
    let mut mem = Memory::new();
    let layout = UniversalLayout::alloc(&mut mem, ty, q0, n, slots, rc_factory);
    let mut programs: Vec<Box<dyn Program>> = workload
        .ops
        .iter()
        .enumerate()
        .map(|(pid, ops)| {
            Box::new(RUniversalWorker::new(layout.clone(), pid, ops.clone())) as Box<dyn Program>
        })
        .collect();
    let execution = run(&mut mem, &mut programs, sched, RunOptions::default());
    let audit = audit_history(&mem, &layout);
    WorkloadOutcome {
        execution,
        audit,
        expected_ops: workload.ops.iter().map(Vec::len).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_core::algorithms::{tournament_rc_factory, ConsensusObjectFactory};
    use rc_core::find_recording_witness;
    use rc_runtime::sched::{RandomScheduler, RandomSchedulerConfig, RoundRobin};
    use rc_runtime::CrashModel;
    use rc_spec::types::{Counter, Queue, Sn};
    use std::sync::Arc;

    #[test]
    fn queue_workload_round_trips() {
        let workload = Workload::queue(2, 2, 2);
        assert_eq!(workload.n(), 4);
        assert_eq!(workload.max_ops(), 2);
        let pool = 1 + workload.n() * workload.max_ops();
        let outcome = run_workload(
            Arc::new(Queue::new(16, 8)),
            Value::empty_list(),
            &workload,
            &ConsensusObjectFactory {
                domain: pool as u32,
            },
            &mut RoundRobin::new(),
        );
        assert!(outcome.is_exactly_once(), "{:?}", outcome.audit);
        assert!(outcome.execution.all_decided);
    }

    #[test]
    fn counter_exactly_once_under_crashes() {
        let workload = Workload::uniform(3, vec![Operation::nullary("inc"); 2]);
        for seed in 0..40 {
            let pool = 1 + workload.n() * workload.max_ops();
            let mut sched = RandomScheduler::new(RandomSchedulerConfig {
                seed,
                crash_prob: 0.03,
                crash: CrashModel::independent(4),
            });
            let outcome = run_workload(
                Arc::new(Counter::new(1024)),
                Value::Int(0),
                &workload,
                &ConsensusObjectFactory {
                    domain: pool as u32,
                },
                &mut sched,
            );
            assert!(
                outcome.is_exactly_once(),
                "seed {seed}: {:?}",
                outcome.audit
            );
        }
    }

    /// Full circle: the universal construction powered by *algorithmic*
    /// recoverable consensus — Fig. 2 tournaments over the weak recording
    /// type S_3, with the Appendix F input masking — implements a
    /// recoverable counter, exactly once per operation, under crashes.
    #[test]
    fn weak_type_powers_the_universal_construction() {
        let n = 3;
        let sn: TypeHandle = Arc::new(Sn::new(n));
        let witness = find_recording_witness(&sn, n).expect("S_3 records");
        let factory = tournament_rc_factory(sn, witness);
        let workload = Workload::uniform(n, vec![Operation::nullary("inc"); 2]);
        for seed in 0..25 {
            let mut sched = RandomScheduler::new(RandomSchedulerConfig {
                seed,
                crash_prob: 0.01,
                crash: CrashModel::independent(3),
            });
            let outcome = run_workload(
                Arc::new(Counter::new(1024)),
                Value::Int(0),
                &workload,
                &factory,
                &mut sched,
            );
            assert!(
                outcome.is_exactly_once(),
                "seed {seed}: {:?} (crashes: {})",
                outcome.audit,
                outcome.execution.crashes
            );
            let report = outcome.audit.expect("exactly-once implies Ok");
            assert_eq!(report.final_state, Value::Int((n * 2) as i64));
        }
    }
}
