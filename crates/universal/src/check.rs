//! Replay auditing of universal-construction histories.
//!
//! The operation list *is* the linearization (Section 4: "it creates a
//! linked list of all operations performed on the implemented object, and
//! this list defines the linearization ordering"). Auditing therefore
//! reduces to: collect every appended node, order by `seq`, and replay the
//! operations sequentially from the initial state — every node's stored
//! `newState` and `response` must match the replay exactly, and the `seq`
//! values must be the contiguous range `2..=k+1` with no duplicates.

use crate::layout::{decode_op, UniversalLayout};
use rc_runtime::Memory;
use rc_spec::{ObjectType, Value};
use std::error::Error;
use std::fmt;

/// A successful audit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistoryReport {
    /// Node ids in linearization order (the dummy excluded).
    pub order: Vec<usize>,
    /// Number of appended nodes owned by each process.
    pub applied_per_pid: Vec<usize>,
    /// The implemented object's state after the whole history.
    pub final_state: Value,
}

/// Why an audit failed — any of these indicates a broken construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuditError {
    /// Two appended nodes share a `seq` value.
    DuplicateSeq {
        /// The duplicated sequence number.
        seq: i64,
    },
    /// The `seq` values do not form a contiguous range starting at 2.
    NonContiguousSeq {
        /// The missing sequence number.
        missing: i64,
    },
    /// A node's stored `newState` disagrees with the sequential replay.
    StateMismatch {
        /// The offending node.
        node: usize,
        /// What the replay computed.
        expected: Value,
        /// What the node stores.
        stored: Value,
    },
    /// A node's stored `response` disagrees with the sequential replay.
    ResponseMismatch {
        /// The offending node.
        node: usize,
        /// What the replay computed.
        expected: Value,
        /// What the node stores.
        stored: Value,
    },
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::DuplicateSeq { seq } => {
                write!(f, "two nodes claim list position {seq}")
            }
            AuditError::NonContiguousSeq { missing } => {
                write!(f, "no node claims list position {missing}")
            }
            AuditError::StateMismatch {
                node,
                expected,
                stored,
            } => write!(
                f,
                "node {node}: stored state {stored} but replay gives {expected}"
            ),
            AuditError::ResponseMismatch {
                node,
                expected,
                stored,
            } => write!(
                f,
                "node {node}: stored response {stored} but replay gives {expected}"
            ),
        }
    }
}

impl Error for AuditError {}

/// Audits the history recorded in `mem` for `layout`; see the module docs.
///
/// # Errors
///
/// Returns the first [`AuditError`] found, scanning in linearization
/// order.
pub fn audit_history(mem: &Memory, layout: &UniversalLayout) -> Result<HistoryReport, AuditError> {
    // Collect appended nodes (seq > 1; the dummy holds seq = 1).
    let mut appended: Vec<(i64, usize)> = Vec::new();
    for (id, node) in layout.nodes.iter().enumerate().skip(1) {
        let seq = mem
            .peek(node.seq)
            .as_int()
            .expect("seq registers hold ints");
        if seq != 0 {
            appended.push((seq, id));
        }
    }
    appended.sort_unstable();
    for pair in appended.windows(2) {
        if pair[0].0 == pair[1].0 {
            return Err(AuditError::DuplicateSeq { seq: pair[0].0 });
        }
    }
    for (i, (seq, _)) in appended.iter().enumerate() {
        let expected = i as i64 + 2;
        if *seq != expected {
            return Err(AuditError::NonContiguousSeq { missing: expected });
        }
    }

    // Sequential replay.
    let mut state = layout.initial_state.clone();
    let mut applied_per_pid = vec![0usize; layout.n];
    let mut order = Vec::with_capacity(appended.len());
    for (_, id) in &appended {
        let node = &layout.nodes[*id];
        let op = decode_op(&mem.peek(node.op));
        let t = layout.ty.apply(&state, &op);
        let stored_state = mem.peek(node.new_state);
        if stored_state != t.next {
            return Err(AuditError::StateMismatch {
                node: *id,
                expected: t.next,
                stored: stored_state,
            });
        }
        let stored_resp = mem.peek(node.response);
        if stored_resp != t.response {
            return Err(AuditError::ResponseMismatch {
                node: *id,
                expected: t.response,
                stored: stored_resp,
            });
        }
        state = t.next;
        if let Some((pid, _)) = layout.owner_of(*id) {
            applied_per_pid[pid] += 1;
        }
        order.push(*id);
    }

    Ok(HistoryReport {
        order,
        applied_per_pid,
        final_state: state,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::encode_op;
    use rc_core::algorithms::ConsensusObjectFactory;
    use rc_runtime::MemOps;
    use rc_spec::types::Counter;
    use rc_spec::Operation;
    use std::sync::Arc;

    fn tiny_layout(mem: &mut Memory) -> Arc<UniversalLayout> {
        UniversalLayout::alloc(
            mem,
            Arc::new(Counter::new(64)),
            Value::Int(0),
            2,
            2,
            &ConsensusObjectFactory { domain: 8 },
        )
    }

    /// Hand-writes a well-formed two-node history.
    fn write_history(mem: &mut Memory, layout: &UniversalLayout) {
        let inc = Operation::nullary("inc");
        for (pos, (pid, slot)) in [(0usize, 0usize), (1, 0)].iter().enumerate() {
            let id = layout.node_id(*pid, *slot);
            let node = &layout.nodes[id];
            mem.write_register(node.op, encode_op(&inc));
            mem.write_register(node.new_state, Value::Int(pos as i64 + 1));
            mem.write_register(node.response, Value::Unit);
            mem.write_register(node.seq, Value::Int(pos as i64 + 2));
        }
    }

    #[test]
    fn audits_clean_history() {
        let mut mem = Memory::new();
        let layout = tiny_layout(&mut mem);
        write_history(&mut mem, &layout);
        let report = audit_history(&mem, &layout).expect("clean");
        assert_eq!(report.order.len(), 2);
        assert_eq!(report.final_state, Value::Int(2));
        assert_eq!(report.applied_per_pid, vec![1, 1]);
    }

    #[test]
    fn detects_duplicate_seq() {
        let mut mem = Memory::new();
        let layout = tiny_layout(&mut mem);
        write_history(&mut mem, &layout);
        // Clone position 2 onto another node.
        let id = layout.node_id(0, 1);
        mem.write_register(layout.nodes[id].op, encode_op(&Operation::nullary("inc")));
        mem.write_register(layout.nodes[id].seq, Value::Int(2));
        assert_eq!(
            audit_history(&mem, &layout),
            Err(AuditError::DuplicateSeq { seq: 2 })
        );
    }

    #[test]
    fn detects_gap_in_seq() {
        let mut mem = Memory::new();
        let layout = tiny_layout(&mut mem);
        write_history(&mut mem, &layout);
        let id = layout.node_id(1, 0);
        mem.write_register(layout.nodes[id].seq, Value::Int(5));
        assert_eq!(
            audit_history(&mem, &layout),
            Err(AuditError::NonContiguousSeq { missing: 3 })
        );
    }

    #[test]
    fn detects_state_and_response_mismatches() {
        let mut mem = Memory::new();
        let layout = tiny_layout(&mut mem);
        write_history(&mut mem, &layout);
        let id = layout.node_id(1, 0);
        mem.write_register(layout.nodes[id].new_state, Value::Int(9));
        assert!(matches!(
            audit_history(&mem, &layout),
            Err(AuditError::StateMismatch { .. })
        ));
        mem.write_register(layout.nodes[id].new_state, Value::Int(2));
        mem.write_register(layout.nodes[id].response, Value::Int(1));
        assert!(matches!(
            audit_history(&mem, &layout),
            Err(AuditError::ResponseMismatch { .. })
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = AuditError::DuplicateSeq { seq: 3 };
        assert!(e.to_string().contains("position 3"));
        let e = AuditError::StateMismatch {
            node: 4,
            expected: Value::Int(1),
            stored: Value::Int(2),
        };
        assert!(e.to_string().contains("node 4"));
    }
}
